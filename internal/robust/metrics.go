package robust

import "repro/internal/obs"

// clientMetrics holds the client's metric handles, resolved once at
// construction. With a nil registry every handle is nil and every
// update is a no-op nil check — the disabled client allocates nothing
// extra on the access paths.
//
// Metric names (DESIGN.md §7):
//
//	robust_reads_total / robust_read_errors_total
//	robust_read_blocks_total       blocks delivered before completion
//	robust_read_failed_gets_total  failed block GETs tolerated
//	robust_read_bytes_total        decoded payload bytes returned
//	robust_read_latency_seconds    whole-access latency histogram
//	robust_writes_total / robust_write_errors_total
//	robust_write_blocks_total      coded blocks committed (incl. overshoot)
//	robust_write_failed_puts_total failed block PUTs retried elsewhere
//	robust_write_bytes_total       coded bytes shipped to servers
//	robust_write_latency_seconds
//	robust_write_first_commit_seconds latency to the first committed block
//	robust_read_corrupt_shares_total  shares rejected by CRC verification
//	robust_read_rejected_shares_total shares the decoder refused (bad index)
//	robust_read_hedges_total          hedge requests issued
//	robust_read_hedge_wins_total      hedges whose answer arrived first
//	robust_read_hedge_losses_total    hedges beaten by the original
//	robust_write_degraded_total       writes committed in degraded mode
//	robust_repairs_total / robust_repair_errors_total
//	robust_repair_regenerated_total / robust_repair_pruned_total
//	robust_repair_promoted_total      degraded segments restored to full N
//	robust_repair_latency_seconds
//	robust_health_checks_total
//	placement_selections_total        placement decisions served
//	placement_fallback_total          selections served from a degraded tier
type clientMetrics struct {
	reads              *obs.Counter
	readErrors         *obs.Counter
	readBlocks         *obs.Counter
	readFailedGets     *obs.Counter
	readBytes          *obs.Counter
	readLatency        *obs.Histogram
	readCorruptShares  *obs.Counter
	readRejectedShares *obs.Counter
	readHedges         *obs.Counter
	readHedgeWins      *obs.Counter
	readHedgeLosses    *obs.Counter

	writes           *obs.Counter
	writeErrors      *obs.Counter
	writeBlocks      *obs.Counter
	writeFailedPuts  *obs.Counter
	writeBytes       *obs.Counter
	writeLatency     *obs.Histogram
	writeFirstCommit *obs.Histogram
	writeDegraded    *obs.Counter

	repairs           *obs.Counter
	repairErrors      *obs.Counter
	repairRegenerated *obs.Counter
	repairPruned      *obs.Counter
	repairPromoted    *obs.Counter
	repairLatency     *obs.Histogram

	healthChecks *obs.Counter

	placementSelections *obs.Counter
	placementFallbacks  *obs.Counter
}

// newClientMetrics resolves every handle against r; a nil r yields
// all-nil (no-op) handles.
func newClientMetrics(r *obs.Registry) clientMetrics {
	return clientMetrics{
		reads:              r.Counter("robust_reads_total"),
		readErrors:         r.Counter("robust_read_errors_total"),
		readBlocks:         r.Counter("robust_read_blocks_total"),
		readFailedGets:     r.Counter("robust_read_failed_gets_total"),
		readBytes:          r.Counter("robust_read_bytes_total"),
		readLatency:        r.Histogram("robust_read_latency_seconds"),
		readCorruptShares:  r.Counter("robust_read_corrupt_shares_total"),
		readRejectedShares: r.Counter("robust_read_rejected_shares_total"),
		readHedges:         r.Counter("robust_read_hedges_total"),
		readHedgeWins:      r.Counter("robust_read_hedge_wins_total"),
		readHedgeLosses:    r.Counter("robust_read_hedge_losses_total"),

		writes:           r.Counter("robust_writes_total"),
		writeErrors:      r.Counter("robust_write_errors_total"),
		writeBlocks:      r.Counter("robust_write_blocks_total"),
		writeFailedPuts:  r.Counter("robust_write_failed_puts_total"),
		writeBytes:       r.Counter("robust_write_bytes_total"),
		writeLatency:     r.Histogram("robust_write_latency_seconds"),
		writeFirstCommit: r.Histogram("robust_write_first_commit_seconds"),
		writeDegraded:    r.Counter("robust_write_degraded_total"),

		repairs:           r.Counter("robust_repairs_total"),
		repairErrors:      r.Counter("robust_repair_errors_total"),
		repairRegenerated: r.Counter("robust_repair_regenerated_total"),
		repairPruned:      r.Counter("robust_repair_pruned_total"),
		repairPromoted:    r.Counter("robust_repair_promoted_total"),
		repairLatency:     r.Histogram("robust_repair_latency_seconds"),

		healthChecks: r.Counter("robust_health_checks_total"),

		placementSelections: r.Counter("placement_selections_total"),
		placementFallbacks:  r.Counter("placement_fallback_total"),
	}
}
