package robust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
)

// newTestClient builds a client over n in-memory stores.
func newTestClient(t *testing.T, n int, opts Options) (*Client, []*blockstore.MemStore) {
	t.Helper()
	meta := metadata.NewService()
	c, err := NewClient(meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*blockstore.MemStore, n)
	for i := range stores {
		stores[i] = blockstore.NewMemStore()
		addr := fmt.Sprintf("mem-%02d", i)
		if err := c.AttachStore(addr, stores[i]); err != nil {
			t.Fatal(err)
		}
		meta.RegisterServer(metadata.Server{Addr: addr})
	}
	return c, stores
}

func randData(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	c, _ := newTestClient(t, 8, Options{BlockBytes: 4 << 10})
	ctx := context.Background()
	data := randData(300<<10, 1) // 300 KB -> K=75 blocks
	ws, err := c.Write(ctx, "obj", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Committed < ws.N {
		t.Fatalf("committed %d < N %d", ws.Committed, ws.N)
	}
	got, rs, err := c.Read(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs")
	}
	if rs.Received < rs.K {
		t.Fatalf("received %d < K %d: impossible", rs.Received, rs.K)
	}
	if rs.Reception < 0 || rs.Reception > 1.5 {
		t.Fatalf("reception overhead %v implausible", rs.Reception)
	}
}

func TestDataSmallerThanBlock(t *testing.T) {
	c, _ := newTestClient(t, 3, Options{BlockBytes: 1 << 10, Redundancy: 4})
	ctx := context.Background()
	data := []byte("tiny payload")
	if _, err := c.Write(ctx, "tiny", data, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Read(ctx, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestNonBlockMultipleSizes(t *testing.T) {
	c, _ := newTestClient(t, 4, Options{BlockBytes: 4 << 10})
	ctx := context.Background()
	for _, size := range []int{1, 4095, 4096, 4097, 100_000} {
		name := fmt.Sprintf("obj-%d", size)
		data := randData(size, int64(size))
		if _, err := c.Write(ctx, name, data, nil); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, _, err := c.Read(ctx, name)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: data mismatch", size)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	c, _ := newTestClient(t, 2, Options{})
	ctx := context.Background()
	if _, err := c.Write(ctx, "", []byte("x"), nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.Write(ctx, "x", nil, nil); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := c.Write(ctx, "x", []byte("d"), []string{"ghost"}); err == nil {
		t.Fatal("unknown server accepted")
	}
	meta := metadata.NewService()
	empty, _ := NewClient(meta, Options{})
	if _, err := empty.Write(ctx, "x", []byte("d"), nil); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
}

func TestDuplicateWriteRejected(t *testing.T) {
	c, _ := newTestClient(t, 3, Options{BlockBytes: 1 << 10})
	ctx := context.Background()
	data := randData(10<<10, 2)
	if _, err := c.Write(ctx, "dup", data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, "dup", data, nil); !errors.Is(err, metadata.ErrSegmentExists) {
		t.Fatalf("second write = %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	meta := metadata.NewService()
	if _, err := NewClient(meta, Options{Redundancy: 0.1}); err == nil {
		t.Fatal("tiny redundancy accepted")
	}
	if _, err := NewClient(meta, Options{LTDelta: 7}); err == nil {
		t.Fatal("bad delta accepted")
	}
	if _, err := NewClient(meta, Options{BlockBytes: -1}); err == nil {
		t.Fatal("negative block size accepted")
	}
}

func TestReadMissingSegment(t *testing.T) {
	c, _ := newTestClient(t, 2, Options{})
	if _, _, err := c.Read(context.Background(), "ghost"); !errors.Is(err, metadata.ErrSegmentNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadSurvivesServerLoss(t *testing.T) {
	// The architecture's raison d'être: with D=3, losing a couple of
	// servers entirely must not hurt the read. MaxServerShare keeps
	// the rateless write from concentrating blocks when the (instant,
	// in-memory) servers are all equally fast.
	c, _ := newTestClient(t, 8, Options{
		BlockBytes: 4 << 10, Redundancy: 3, MaxServerShare: 0.2,
	})
	ctx := context.Background()
	data := randData(256<<10, 3)
	if _, err := c.Write(ctx, "resilient", data, nil); err != nil {
		t.Fatal(err)
	}
	c.DetachStore("mem-00")
	c.DetachStore("mem-01")
	got, _, err := c.Read(ctx, "resilient")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after server loss")
	}
}

func TestReadSurvivesFlakyServers(t *testing.T) {
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 4 << 10, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Half the servers fail 30% of requests.
	for i := 0; i < 6; i++ {
		var s blockstore.Store = blockstore.NewMemStore()
		if i%2 == 0 {
			s = blockstore.NewSlowStore(s, blockstore.SlowProfile{FailureRate: 0.3}, int64(i))
		}
		c.AttachStore(fmt.Sprintf("s%d", i), s)
	}
	ctx := context.Background()
	data := randData(200<<10, 4)
	if _, err := c.Write(ctx, "flaky", data, nil); err != nil {
		t.Fatal(err)
	}
	got, rs, err := c.Read(ctx, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch with flaky servers")
	}
	if rs.FailedGets == 0 {
		t.Log("note: no injected failures observed (possible but unlikely)")
	}
}

func TestUnrecoverableAfterMassiveLoss(t *testing.T) {
	c, _ := newTestClient(t, 6, Options{
		BlockBytes: 4 << 10, Redundancy: 1, MaxServerShare: 0.2,
	})
	ctx := context.Background()
	data := randData(128<<10, 5)
	if _, err := c.Write(ctx, "doomed", data, nil); err != nil {
		t.Fatal(err)
	}
	// Drop 5 of 6 servers: with D=1 that leaves ~K/3 blocks.
	for i := 0; i < 5; i++ {
		c.DetachStore(fmt.Sprintf("mem-%02d", i))
	}
	if _, _, err := c.Read(ctx, "doomed"); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestSpeculativeReadCancelsStragglers(t *testing.T) {
	// One pathologically slow server must not slow the read down: the
	// decode completes from the fast servers and cancels the rest.
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 4 << 10, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		var s blockstore.Store = blockstore.NewMemStore()
		if i == 0 {
			s = blockstore.NewSlowStore(s, blockstore.SlowProfile{BaseLatency: 10 * time.Second}, 1)
		}
		c.AttachStore(fmt.Sprintf("s%d", i), s)
	}
	ctx := context.Background()
	data := randData(128<<10, 6)
	// Write without the slow server so the write is fast; its absence
	// in placement also exercises partial placement reads.
	var fast []string
	for i := 1; i < 6; i++ {
		fast = append(fast, fmt.Sprintf("s%d", i))
	}
	if _, err := c.Write(ctx, "fastread", data, fast); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, _, err := c.Read(ctx, "fastread")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read took %v; stragglers not canceled", elapsed)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
}

func TestHeterogeneousServersUnbalancedPlacement(t *testing.T) {
	// Rateless writes must put more blocks on faster servers.
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 4 << 10, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		lat := time.Duration(1+i*12) * time.Millisecond
		s := blockstore.NewSlowStore(blockstore.NewMemStore(), blockstore.SlowProfile{BaseLatency: lat}, int64(i))
		c.AttachStore(fmt.Sprintf("s%d", i), s)
	}
	ctx := context.Background()
	data := randData(256<<10, 7)
	ws, err := c.Write(ctx, "skewed", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.PerServer["s0"] <= ws.PerServer["s3"] {
		t.Fatalf("fast server got %d blocks, slow got %d; expected skew toward fast",
			ws.PerServer["s0"], ws.PerServer["s3"])
	}
	got, _, err := c.Read(ctx, "skewed")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
}

func TestUpdateInPlace(t *testing.T) {
	c, _ := newTestClient(t, 6, Options{BlockBytes: 4 << 10, Redundancy: 3})
	ctx := context.Background()
	data := randData(128<<10, 8)
	if _, err := c.Write(ctx, "mut", data, nil); err != nil {
		t.Fatal(err)
	}
	patch := []byte("THE-NEW-CONTENT!")
	off := int64(40_000)
	if err := c.Update(ctx, "mut", off, patch); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want[off:], patch)
	got, _, err := c.Read(ctx, "mut")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("update not reflected in read")
	}
	// Version bumped.
	info, err := c.Stat("mut")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("version = %d, want 2", info.Version)
	}
}

func TestUpdateBounds(t *testing.T) {
	c, _ := newTestClient(t, 3, Options{BlockBytes: 1 << 10})
	ctx := context.Background()
	data := randData(10<<10, 9)
	c.Write(ctx, "b", data, nil)
	if err := c.Update(ctx, "b", int64(len(data)-2), []byte("xxxx")); err == nil {
		t.Fatal("out-of-bounds update accepted")
	}
	if err := c.Update(ctx, "b", -1, []byte("x")); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := c.Update(ctx, "b", 0, nil); err != nil {
		t.Fatal("empty patch should be a no-op")
	}
}

func TestUpdateTouchesFewBlocks(t *testing.T) {
	// The §4.3.4 locality claim: a one-block update rewrites only the
	// coded blocks referencing it — a small fraction of N.
	c, _ := newTestClient(t, 6, Options{BlockBytes: 1 << 10, Redundancy: 3})
	ctx := context.Background()
	data := randData(128<<10, 10) // K=128, N=512
	if _, err := c.Write(ctx, "loc", data, nil); err != nil {
		t.Fatal(err)
	}
	affected, err := c.AffectedBlocks("loc", 0, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := c.Stat("loc")
	if affected == 0 {
		t.Fatal("no blocks affected: impossible")
	}
	if affected > info.N/4 {
		t.Fatalf("one-block update touches %d of %d coded blocks; expected locality", affected, info.N)
	}
}

func TestDeleteRemovesBlocksAndMetadata(t *testing.T) {
	c, stores := newTestClient(t, 4, Options{BlockBytes: 4 << 10})
	ctx := context.Background()
	data := randData(64<<10, 11)
	if _, err := c.Write(ctx, "gone", data, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(ctx, "gone"); !errors.Is(err, metadata.ErrSegmentNotFound) {
		t.Fatalf("read after delete = %v", err)
	}
	for i, s := range stores {
		if idx, _ := s.List(ctx, "gone"); len(idx) != 0 {
			t.Fatalf("store %d still holds %d blocks", i, len(idx))
		}
	}
}

func TestWriteContextCancellation(t *testing.T) {
	meta := metadata.NewService()
	c, _ := NewClient(meta, Options{BlockBytes: 4 << 10})
	for i := 0; i < 3; i++ {
		s := blockstore.NewSlowStore(blockstore.NewMemStore(),
			blockstore.SlowProfile{BaseLatency: time.Second}, int64(i))
		c.AttachStore(fmt.Sprintf("s%d", i), s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Write(ctx, "slow", randData(1<<20, 12), nil)
	if err == nil {
		t.Fatal("canceled write succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("write cancellation too slow")
	}
}

func TestStat(t *testing.T) {
	c, _ := newTestClient(t, 4, Options{BlockBytes: 4 << 10, Redundancy: 2})
	ctx := context.Background()
	data := randData(100<<10, 13)
	if _, err := c.Write(ctx, "st", data, nil); err != nil {
		t.Fatal(err)
	}
	info, err := c.Stat("st")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) || info.K != 25 || info.N != 75 {
		t.Fatalf("stat = %+v", info)
	}
	total := 0
	for _, n := range info.Servers {
		total += n
	}
	if total < info.N {
		t.Fatalf("placement holds %d < N=%d", total, info.N)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	c, _ := newTestClient(t, 6, Options{BlockBytes: 4 << 10})
	ctx := context.Background()
	// Seed several objects.
	payloads := map[string][]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("conc-%d", i)
		payloads[name] = randData(64<<10, int64(100+i))
		if _, err := c.Write(ctx, name, payloads[name], nil); err != nil {
			t.Fatal(err)
		}
	}
	errCh := make(chan error, 32)
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		var inner [16]chan struct{}
		for g := range inner {
			inner[g] = make(chan struct{})
			g := g
			go func() {
				defer close(inner[g])
				name := fmt.Sprintf("conc-%d", g%4)
				got, _, err := c.Read(ctx, name)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, payloads[name]) {
					errCh <- fmt.Errorf("%s mismatch", name)
				}
			}()
		}
		for g := range inner {
			<-inner[g]
		}
	}()
	<-doneCh
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
