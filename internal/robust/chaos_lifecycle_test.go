package robust

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/transport"
)

// Lifecycle chaos: the drain/remove/rejoin machinery under the same
// real-socket fault regime as the rest of the suite. The invariant
// throughout is the paper's: acknowledged writes are never lost, no
// matter what the operator or the failure detector is doing to the
// server set meanwhile.

// TestChaosDrainUnderFaults drains one server while another dies
// outright mid-drain. The repair and rebalance passes must between
// them finish the evacuation — every share off the draining server,
// metadata never pointing at it — with all acknowledged writes still
// readable byte-for-byte.
func TestChaosDrainUnderFaults(t *testing.T) {
	segments := 3
	if os.Getenv("ROBUSTORE_SOAK") != "" {
		segments = 8
	}
	reg := obs.NewRegistry()
	tracker := newFakeTracker()
	client, servers := startChaosCluster(t, 6,
		Options{BlockBytes: 8 << 10, MaxServerShare: 0.25, Health: tracker, Obs: reg},
		transport.ClientOptions{MaxRetries: 2})
	ctx := context.Background()

	payloads := make(map[string][]byte, segments)
	for i := 0; i < segments; i++ {
		name := fmt.Sprintf("drain-%d", i)
		payloads[name] = randData(64<<10, int64(200+i))
		if _, err := client.Write(ctx, name, payloads[name], nil); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
	}

	draining := servers[0].addr
	if err := client.Meta().SetServerState(draining, metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	// Mid-drain, a second server dies hard: every store op errors and
	// the failure detector marks it down.
	dead := servers[1].addr
	servers[1].storeInj.SetConfig(faultinject.Config{ErrProb: 1})
	tracker.exclude(dead, true)

	d := NewDaemon(client, DaemonOptions{Rebalance: true, Obs: reg})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := d.RunOnce(ctx); err != nil {
			t.Logf("repair pass (expected noise while %s is dead): %v", dead, err)
		}
		if _, err := d.RebalanceOnce(ctx); err != nil {
			t.Logf("rebalance pass: %v", err)
		}
		st, err := client.DrainProgress(draining)
		if err != nil {
			t.Fatal(err)
		}
		if st.Shares == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stuck at %d shares with %s dead", st.Shares, dead)
		}
	}

	// Zero acked-write loss: every segment reads back intact, and no
	// placement references the drained server anymore.
	for name, want := range payloads {
		got, _, err := client.Read(ctx, name)
		if err != nil {
			t.Fatalf("read %s after drain: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("acked write %s lost during drain", name)
		}
		seg, err := client.Meta().LookupSegment(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.Placement[draining]) != 0 {
			t.Fatalf("%s still places %v on the drained server", name, seg.Placement[draining])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["rebalance_moves_total"] == 0 {
		t.Fatalf("drain completed without rebalance moves: %v", snap.Counters)
	}
	t.Logf("drain complete: %d moves, %d move errors, %d repair blocks",
		snap.Counters["rebalance_moves_total"],
		snap.Counters["rebalance_move_errors_total"],
		snap.Counters["repair_blocks_written_total"])
}

// TestChaosZoneLossReadSurvives writes with zone spreading and a zone
// share cap, then kills an entire zone. The cap guarantees the dead
// zone held at most ceil(frac*N) shares, so the surviving zones must
// carry the read on their own.
func TestChaosZoneLossReadSurvives(t *testing.T) {
	const frac = 0.34
	client, servers := startChaosCluster(t, 6,
		Options{BlockBytes: 8 << 10, MaxZoneShare: frac},
		transport.ClientOptions{MaxRetries: 2})
	ctx := context.Background()
	// Re-register each server with a zone: two servers per zone, three
	// zones. The blank State preserves lifecycle on re-registration.
	zoneOf := map[string]string{}
	for i, cs := range servers {
		z := fmt.Sprintf("z%d", i%3)
		zoneOf[cs.addr] = z
		if err := client.Meta().RegisterServer(metadata.Server{Addr: cs.addr, Zone: z}); err != nil {
			t.Fatal(err)
		}
	}

	data := randData(64<<10, 210)
	ws, err := client.WriteWithQoS(ctx, "zoned", data, QoS{SpreadZones: true, MaxZoneShare: frac})
	if err != nil {
		t.Fatal(err)
	}
	cap := placement.ZoneCapShares(frac, ws.N)
	perZone := map[string]int{}
	for addr, n := range ws.PerServer {
		perZone[zoneOf[addr]] += n
	}
	for z, n := range perZone {
		if n > cap {
			t.Fatalf("zone %s committed %d/%d shares over cap %d", z, n, ws.N, cap)
		}
	}

	// Zone z0 goes dark: both of its servers fail every operation and
	// reset connections.
	for i, cs := range servers {
		if i%3 == 0 {
			cs.storeInj.SetConfig(faultinject.Config{ErrProb: 1})
			cs.connInj.SetConfig(faultinject.Config{ResetProb: 0.5})
		}
	}
	got, rs, err := client.Read(ctx, "zoned")
	if err != nil {
		t.Fatalf("read after zone loss: %v (stats %+v)", err, rs)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after zone loss")
	}
	t.Logf("zone loss survived: per-zone %v (cap %d), %d failed gets", perZone, cap, rs.FailedGets)
}

// TestChaosRejoinRebalanceConverges drains a server, writes while it
// is out of rotation, rejoins it, and checks the rebalancer converges
// shares back onto it — the rejoin path of the lifecycle.
func TestChaosRejoinRebalanceConverges(t *testing.T) {
	segments := 2
	if os.Getenv("ROBUSTORE_SOAK") != "" {
		segments = 6
	}
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 4,
		Options{BlockBytes: 8 << 10, MaxServerShare: 0.5, Obs: reg},
		transport.ClientOptions{})
	ctx := context.Background()
	rejoining := servers[3].addr
	if err := client.Meta().SetServerState(rejoining, metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}

	payloads := make(map[string][]byte, segments)
	for i := 0; i < segments; i++ {
		name := fmt.Sprintf("rejoin-%d", i)
		payloads[name] = randData(64<<10, int64(220+i))
		if _, err := client.Write(ctx, name, payloads[name], nil); err != nil {
			t.Fatal(err)
		}
		seg, err := client.Meta().LookupSegment(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.Placement[rejoining]) != 0 {
			t.Fatalf("%s placed shares on the draining server", name)
		}
	}

	// Rejoin and rebalance: the empty server must soak up load.
	if err := client.Meta().SetServerState(rejoining, metadata.ServerActive); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(client, DaemonOptions{Rebalance: true, Obs: reg})
	stats, err := d.RebalanceOnce(ctx)
	if err != nil {
		t.Fatalf("rebalance after rejoin: %v", err)
	}
	gained := 0
	for name, want := range payloads {
		seg, err := client.Meta().LookupSegment(name)
		if err != nil {
			t.Fatal(err)
		}
		gained += len(seg.Placement[rejoining])
		got, _, err := client.Read(ctx, name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("read %s after rebalance: %v", name, err)
		}
	}
	if gained == 0 {
		t.Fatalf("rejoined server gained no shares (stats %+v)", stats)
	}
	t.Logf("rejoin converged: %d shares onto %s in %d moves", gained, rejoining, stats.Moved)
}
