package robust

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ltcode"
	"repro/internal/metadata"
)

// Write stores data as an erasure-coded segment, speculatively and
// ratelessly (§4.3.2): every server absorbs freshly generated coded
// blocks at its own pace until N = (1+D)·K blocks have committed
// globally, at which point remaining work is canceled. servers
// selects the target set; nil means all attached backends.
func (c *Client) Write(ctx context.Context, name string, data []byte, servers []string) (stats WriteStats, err error) {
	start := time.Now()
	tr := c.obs.StartTrace("write", name)
	defer func() {
		c.m.writes.Inc()
		c.m.writeBlocks.Add(int64(stats.Committed))
		c.m.writeBytes.Add(stats.BytesSent)
		c.m.writeFailedPuts.Add(int64(stats.FailedPuts))
		c.m.writeLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			c.m.writeErrors.Inc()
		}
		tr.End(err)
	}()
	if name == "" {
		return WriteStats{}, fmt.Errorf("robust: empty segment name")
	}
	if len(data) == 0 {
		return WriteStats{}, fmt.Errorf("robust: empty data")
	}
	if servers == nil {
		servers = c.healthyServers()
	}
	if len(servers) == 0 {
		return WriteStats{}, ErrNoServers
	}
	for _, addr := range servers {
		if _, ok := c.store(addr); !ok {
			return WriteStats{}, fmt.Errorf("robust: server %q not attached", addr)
		}
	}
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return WriteStats{}, err
	}
	defer unlock()
	if _, err := c.meta.LookupSegment(name); err == nil {
		return WriteStats{}, metadata.ErrSegmentExists
	}
	tr.Stage("lock")

	// Plan the code.
	blocks := splitBlocks(data, c.opts.BlockBytes)
	k := len(blocks)
	n := int(math.Ceil((1 + c.opts.Redundancy) * float64(k)))
	graphN := n + c.opts.GraphSlack*len(servers)
	seed := graphSeed(name, int64(len(data)))
	params := ltcode.Params{K: k, C: c.opts.LTC, Delta: c.opts.LTDelta}
	graph, err := ltcode.BuildGraph(params, graphN, newSeededRand(seed), ltcode.DefaultGraphOptions())
	if err != nil {
		return WriteStats{}, err
	}
	if tr != nil {
		tr.Stagef("plan", "K=%d N=%d graphN=%d servers=%d", k, n, graphN, len(servers))
	}

	// Rateless speculative spread. Fresh block indices come from an
	// atomic cursor; an index whose put fails goes to a shared retry
	// queue so another (healthier) server picks it up. A global
	// failure budget bounds the retry churn when everything is down.
	sealed := !c.opts.DisableShareChecksums
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next      int64 = -1 // atomically incremented block cursor
		committed int64
		bytesSent int64
		failed    int64
		// Stage markers raced for by the rateless workers: the first
		// block landing on a server and the commit target being reached.
		firstCommit, targetReached atomic.Bool
	)
	failureBudget := int64(4*graphN + 64)
	retry := make(chan int, graphN)
	// takeIndex prefers retries, then fresh indices, then blocks until
	// a retry appears or the write ends.
	takeIndex := func() (int, bool) {
		select {
		case i := <-retry:
			return i, true
		default:
		}
		if i := int(atomic.AddInt64(&next, 1)); i < graphN {
			return i, true
		}
		select {
		case i := <-retry:
			return i, true
		case <-wctx.Done():
			return 0, false
		}
	}
	// The share cap is a fraction of the commit target n, not of the
	// (larger) graph: capping against graphN lets a fast server absorb
	// share·graphN of the n committed blocks, which under adversarial
	// scheduling concentrates the segment on fewer holders than the
	// placement-diversity option promises and can make the loss of two
	// servers unrecoverable.
	perServerCap := int64(graphN)
	if c.opts.MaxServerShare > 0 {
		perServerCap = int64(math.Ceil(c.opts.MaxServerShare * float64(n)))
		if perServerCap < 1 {
			perServerCap = 1
		}
	}
	placeMu := sync.Mutex{}
	placement := make(map[string][]int, len(servers))
	serverCount := make(map[string]*int64, len(servers))
	for _, addr := range servers {
		var zero int64
		serverCount[addr] = &zero
	}
	var wg sync.WaitGroup
	for _, addr := range servers {
		store, _ := c.store(addr)
		count := serverCount[addr]
		for w := 0; w < c.opts.PerServerParallel; w++ {
			wg.Add(1)
			go func(addr string, store storePutter) {
				defer wg.Done()
				for {
					if wctx.Err() != nil {
						return
					}
					// Reserve a slot in this server's share before taking
					// an index: a plain load-then-put check lets two
					// pipeline workers race past the cap together.
					if atomic.AddInt64(count, 1) > perServerCap {
						atomic.AddInt64(count, -1)
						return // this server has its share
					}
					i, ok := takeIndex()
					if !ok {
						atomic.AddInt64(count, -1)
						return
					}
					coded := graph.EncodeBlock(i, blocks)
					if sealed {
						coded = sealShare(coded)
					}
					err := store.Put(wctx, name, i, coded)
					c.reportOutcome(addr, err)
					if err != nil {
						atomic.AddInt64(count, -1)
						if wctx.Err() != nil {
							return
						}
						if atomic.AddInt64(&failed, 1) > failureBudget {
							cancel()
							return
						}
						retry <- i // hand the index to a healthier worker
						continue
					}
					atomic.AddInt64(&bytesSent, int64(len(coded)))
					if !firstCommit.Swap(true) {
						tr.StageDetail("first-commit", addr)
					}
					placeMu.Lock()
					placement[addr] = append(placement[addr], i)
					placeMu.Unlock()
					if atomic.AddInt64(&committed, 1) >= int64(n) {
						if !targetReached.Swap(true) {
							tr.Stage("commit-target")
						}
						cancel() // enough blocks on disk: stop the rest
						return
					}
				}
			}(addr, store)
		}
	}
	wg.Wait()

	stats = WriteStats{
		K: k, N: n,
		Committed:  int(atomic.LoadInt64(&committed)),
		BytesSent:  atomic.LoadInt64(&bytesSent),
		Duration:   time.Since(start),
		PerServer:  countPlacement(placement),
		FailedPuts: int(atomic.LoadInt64(&failed)),
	}
	if tr != nil {
		tr.Stagef("per-server", "blocks=%v failed-puts=%d", stats.PerServer, stats.FailedPuts)
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if stats.Committed < n {
		// Graceful degradation (opt-in): commit what survived when it
		// still clears the degraded floor — comfortably above the LT
		// decode threshold — rather than discarding a recoverable
		// segment because some servers were down. The segment is
		// marked Degraded so Repair can later restore full redundancy.
		if !c.opts.DegradedWrites || stats.Committed < floorInt(k, c.opts.DegradedFloor) {
			return stats, fmt.Errorf("%w: %d of %d (%d puts failed)",
				ErrShortWrite, stats.Committed, n, stats.FailedPuts)
		}
		stats.Degraded = true
	}

	seg := metadata.Segment{
		Name: name,
		Size: int64(len(data)),
		Coding: metadata.Coding{
			Algorithm:  "lt",
			K:          k,
			N:          n,
			BlockBytes: c.opts.BlockBytes,
			C:          c.opts.LTC,
			Delta:      c.opts.LTDelta,
			GraphSeed:  seed,
			GraphN:     graphN,
			ShareCRC:   sealed,
		},
		Placement: placement,
		Degraded:  stats.Degraded,
	}
	if err := c.meta.CreateSegment(seg); err != nil {
		return stats, err
	}
	tr.Stage("metadata")
	if stats.Degraded {
		c.m.writeDegraded.Inc()
		tr.StageDetail("degraded-commit", fmt.Sprintf("%d/%d", stats.Committed, n))
		return stats, fmt.Errorf("%w: %d of %d blocks (floor %d)",
			ErrDegradedWrite, stats.Committed, n, floorInt(k, c.opts.DegradedFloor))
	}
	return stats, nil
}

// floorInt is the degraded-commit floor ceil((1+floor)·K).
func floorInt(k int, floor float64) int {
	return int(math.Ceil((1 + floor) * float64(k)))
}

// storePutter is the write-path slice of blockstore.Store.
type storePutter interface {
	Put(ctx context.Context, segment string, index int, data []byte) error
}

func countPlacement(p map[string][]int) map[string]int {
	out := make(map[string]int, len(p))
	for addr, idx := range p {
		out[addr] = len(idx)
	}
	return out
}

// Delete removes a segment's blocks from every holder and drops its
// metadata. Block deletions on unreachable servers are reported but
// do not abort the operation.
func (c *Client) Delete(ctx context.Context, name string) error {
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return err
	}
	defer unlock()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return err
	}
	var firstErr error
	for addr, indices := range seg.Placement {
		store, ok := c.store(addr)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("robust: server %q unreachable during delete", addr)
			}
			continue
		}
		for _, i := range indices {
			if err := store.Delete(ctx, name, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := c.meta.DeleteSegment(name); err != nil {
		return err
	}
	return firstErr
}
