package robust

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/blockstore"
)

// Write stores data as an erasure-coded segment, speculatively and
// ratelessly (§4.3.2): every server absorbs freshly generated coded
// blocks at its own pace until N = (1+D)·K blocks have committed
// globally, at which point remaining work is canceled. servers
// selects the target set; nil means all attached backends. With
// ChunkBytes set the segment is written as independent chunks —
// Write is a slicing caller of the same streaming core WriteFrom
// pipelines a reader through.
func (c *Client) Write(ctx context.Context, name string, data []byte, servers []string) (WriteStats, error) {
	chunk := c.opts.ChunkBytes
	off := 0
	next := func() ([]byte, error) {
		if off >= len(data) {
			return nil, io.EOF
		}
		end := len(data)
		if chunk > 0 && int64(end-off) > chunk {
			end = off + int(chunk)
		}
		piece := data[off:end]
		off = end
		return piece, nil
	}
	return c.writeSegment(ctx, name, int64(len(data)), next, nil, servers)
}

// floorInt is the degraded-commit floor ceil((1+floor)·K).
func floorInt(k int, floor float64) int {
	return int(math.Ceil((1 + floor) * float64(k)))
}

// storePutter is the write-path slice of blockstore.Store.
type storePutter interface {
	Put(ctx context.Context, segment string, index int, data []byte) error
}

// putBatcher is the batched write-path slice of blockstore.Batcher.
type putBatcher interface {
	PutBatch(ctx context.Context, segment string, puts []blockstore.BatchPut) []error
}

// batchDeleter is the batched delete slice of blockstore.Batcher.
type batchDeleter interface {
	DeleteBatch(ctx context.Context, segment string, indices []int) []error
}

func countPlacement(p map[string][]int) map[string]int {
	out := make(map[string]int, len(p))
	for addr, idx := range p {
		out[addr] = len(idx)
	}
	return out
}

// Delete removes a segment's blocks from every holder — in parallel,
// one goroutine per server, using the batch delete when the store
// offers it — then drops its metadata. Per-server failures are
// aggregated with errors.Join; block deletions on unreachable servers
// are reported but do not abort the operation.
func (c *Client) Delete(ctx context.Context, name string) error {
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return err
	}
	defer unlock()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return err
	}
	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	for addr, indices := range seg.Placement {
		store, ok := c.store(addr)
		if !ok {
			errs = append(errs, fmt.Errorf("robust: server %q unreachable during delete", addr))
			continue
		}
		wg.Add(1)
		go func(store blockstore.Store, indices []int) {
			defer wg.Done()
			if err := deleteBlocks(ctx, store, name, indices); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(store, indices)
	}
	wg.Wait()
	if err := c.meta.DeleteSegment(name); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// deleteBlocks removes one server's blocks, batched when possible.
func deleteBlocks(ctx context.Context, store blockstore.Store, name string, indices []int) error {
	if bd, ok := store.(batchDeleter); ok && len(indices) > 1 {
		return errors.Join(bd.DeleteBatch(ctx, name, indices)...)
	}
	var errs []error
	for _, i := range indices {
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
			break
		}
		if err := store.Delete(ctx, name, i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
