package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/placement"
)

// Write stores data as an erasure-coded segment, speculatively and
// ratelessly (§4.3.2): every server absorbs freshly generated coded
// blocks at its own pace until N = (1+D)·K blocks have committed
// globally, at which point remaining work is canceled. servers
// selects the target set; nil means all attached backends.
func (c *Client) Write(ctx context.Context, name string, data []byte, servers []string) (stats WriteStats, err error) {
	start := time.Now()
	tr := c.obs.StartTrace("write", name)
	defer func() {
		c.m.writes.Inc()
		c.m.writeBlocks.Add(int64(stats.Committed))
		c.m.writeBytes.Add(stats.BytesSent)
		c.m.writeFailedPuts.Add(int64(stats.FailedPuts))
		c.m.writeLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			c.m.writeErrors.Inc()
		}
		tr.End(err)
	}()
	if name == "" {
		return WriteStats{}, fmt.Errorf("robust: empty segment name")
	}
	if len(data) == 0 {
		return WriteStats{}, fmt.Errorf("robust: empty data")
	}
	if servers == nil {
		servers = c.writableServers()
	}
	if len(servers) == 0 {
		return WriteStats{}, ErrNoServers
	}
	for _, addr := range servers {
		if _, ok := c.store(addr); !ok {
			return WriteStats{}, fmt.Errorf("robust: server %q not attached", addr)
		}
	}
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return WriteStats{}, err
	}
	defer unlock()
	if _, err := c.meta.LookupSegment(name); err == nil {
		return WriteStats{}, metadata.ErrSegmentExists
	}
	tr.Stage("lock")

	// Plan the code.
	blocks := splitBlocks(data, c.opts.BlockBytes)
	k := len(blocks)
	n := int(math.Ceil((1 + c.opts.Redundancy) * float64(k)))
	graphN := n + c.opts.GraphSlack*len(servers)
	seed := graphSeed(name, int64(len(data)))
	graph, err := c.cachedGraph(metadata.Coding{
		K: k, C: c.opts.LTC, Delta: c.opts.LTDelta, GraphSeed: seed, GraphN: graphN,
	})
	if err != nil {
		return WriteStats{}, err
	}
	if tr != nil {
		tr.Stagef("plan", "K=%d N=%d graphN=%d servers=%d", k, n, graphN, len(servers))
	}

	// Rateless speculative spread. Fresh block indices come from an
	// atomic cursor; an index whose put fails goes to a shared retry
	// queue so another (healthier) server picks it up. A global
	// failure budget bounds the retry churn when everything is down.
	sealed := !c.opts.DisableShareChecksums
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next      int64 = -1 // atomically incremented block cursor
		committed int64
		inflight  int64 // indices claimed by workers, not yet resolved
		bytesSent int64
		failed    int64
		// Stage markers raced for by the rateless workers: the first
		// block landing on a server and the commit target being reached.
		firstCommit, targetReached atomic.Bool
	)
	failureBudget := int64(4*graphN + 64)
	retry := make(chan int, graphN)
	// takeIndices claims up to want indices: queued retries first, then
	// a fresh run off the cursor, then it blocks until a retry appears
	// or the write ends. An empty result means the write is over.
	takeIndices := func(dst []int, want int) []int {
		dst = dst[:0]
	drain:
		for len(dst) < want {
			select {
			case i := <-retry:
				dst = append(dst, i)
			default:
				break drain
			}
		}
		if m := int64(want - len(dst)); m > 0 {
			end := atomic.AddInt64(&next, m)
			for i := end - m + 1; i <= end; i++ {
				if i < int64(graphN) {
					dst = append(dst, int(i))
				}
			}
		}
		if len(dst) > 0 {
			return dst
		}
		select {
		case i := <-retry:
			return append(dst, i)
		case <-wctx.Done():
			return dst
		}
	}
	// The share cap is a fraction of the commit target n, not of the
	// (larger) graph: capping against graphN lets a fast server absorb
	// share·graphN of the n committed blocks, which under adversarial
	// scheduling concentrates the segment on fewer holders than the
	// placement-diversity option promises and can make the loss of two
	// servers unrecoverable.
	perServerCap := int64(graphN)
	if c.opts.MaxServerShare > 0 {
		perServerCap = int64(math.Ceil(c.opts.MaxServerShare * float64(n)))
		if perServerCap < 1 {
			perServerCap = 1
		}
	}
	// The zone cap is the same reservation discipline one level up:
	// servers in the same failure domain share one atomic counter, so
	// no zone can absorb more than ceil(MaxZoneShare·n) of the
	// committed shares no matter how the speculative race lands.
	var (
		perZoneCap int64
		zoneCounts map[string]*int64
		zoneOf     map[string]string
	)
	if c.opts.MaxZoneShare > 0 {
		perZoneCap = int64(placement.ZoneCapShares(c.opts.MaxZoneShare, n))
		zoneOf = make(map[string]string, len(servers))
		for _, srv := range c.meta.Servers() {
			zoneOf[srv.Addr] = srv.Zone
		}
		zoneCounts = make(map[string]*int64)
		for _, addr := range servers {
			z := zoneOf[addr]
			if zoneCounts[z] == nil {
				zoneCounts[z] = new(int64)
			}
		}
	}
	placeMu := sync.Mutex{}
	placed := make(map[string][]int, len(servers))
	serverCount := make(map[string]*int64, len(servers))
	for _, addr := range servers {
		var zero int64
		serverCount[addr] = &zero
	}
	batchRun := c.opts.BatchBlocks
	if batchRun < 1 {
		batchRun = 1
	}
	bufLen := shareBufLen(c.opts.BlockBytes)
	var wg sync.WaitGroup
	for _, addr := range servers {
		store, _ := c.store(addr)
		count := serverCount[addr]
		var zcount *int64
		if zoneCounts != nil {
			zcount = zoneCounts[zoneOf[addr]]
		}
		for w := 0; w < c.opts.PerServerParallel; w++ {
			wg.Add(1)
			go func(addr string, store storePutter) {
				defer wg.Done()
				batcher, _ := store.(putBatcher)
				maxRun := batchRun
				if batcher == nil {
					maxRun = 1 // no batch fast path: keep the per-block pipeline
				}
				indices := make([]int, 0, maxRun)
				puts := make([]blockstore.BatchPut, 0, maxRun)
				singleErrs := make([]error, maxRun)
				// Share buffers are leased from the pool once per worker
				// lifetime and reused across runs — safe because
				// Store.Put must not retain data — so a warm pool is
				// touched a handful of times per write, not per block.
				bufs := make([]*[]byte, 0, maxRun)
				defer func() {
					for _, b := range bufs {
						putShareBuf(b)
					}
				}()
				for {
					if wctx.Err() != nil {
						return
					}
					// Size the run by the outstanding commit need, so a
					// batch never claims blocks nobody has to store: an
					// unbounded run would overshoot the target by whole
					// batches (the floor of 1 keeps each worker probing,
					// exactly like the per-block pipeline, in case an
					// in-flight put on another server fails).
					want := int(int64(n) - atomic.LoadInt64(&committed) - atomic.LoadInt64(&inflight))
					if want < 1 {
						want = 1
					}
					if want > maxRun {
						want = maxRun
					}
					// Reserve the run in this server's share before taking
					// indices: a plain load-then-put check lets two
					// pipeline workers race past the cap together.
					reserved := want
					if over := atomic.AddInt64(count, int64(want)) - perServerCap; over > 0 {
						if over >= int64(want) {
							atomic.AddInt64(count, -int64(want))
							return // this server has its share
						}
						atomic.AddInt64(count, -over)
						reserved -= int(over)
					}
					if zcount != nil {
						if over := atomic.AddInt64(zcount, int64(reserved)) - perZoneCap; over > 0 {
							if over >= int64(reserved) {
								atomic.AddInt64(zcount, -int64(reserved))
								atomic.AddInt64(count, -int64(reserved))
								return // this failure domain has its share
							}
							atomic.AddInt64(zcount, -over)
							atomic.AddInt64(count, -over)
							reserved -= int(over)
						}
					}
					indices = takeIndices(indices, reserved)
					if give := int64(reserved - len(indices)); give > 0 {
						atomic.AddInt64(count, -give)
						if zcount != nil {
							atomic.AddInt64(zcount, -give)
						}
					}
					if len(indices) == 0 {
						return // write ended while waiting for work
					}
					atomic.AddInt64(&inflight, int64(len(indices)))
					// Encode the run into this worker's leased buffers.
					for len(bufs) < len(indices) {
						bufs = append(bufs, getShareBuf(bufLen))
					}
					puts = puts[:0]
					for bi, i := range indices {
						puts = append(puts, blockstore.BatchPut{
							Index: i,
							Data:  encodeShareInto(*bufs[bi], graph, i, blocks, sealed),
						})
					}
					// One health outcome per wire operation: the batch is
					// one round trip, the fallback loop stays one per put.
					var errs []error
					if batcher != nil && len(puts) > 1 {
						errs = batcher.PutBatch(wctx, name, puts)
						c.reportOutcome(addr, c.batchOutcome(errs))
					} else {
						errs = singleErrs[:len(puts)]
						for j := range puts {
							if cerr := wctx.Err(); cerr != nil {
								errs[j] = cerr // commit target reached or caller gone
								continue
							}
							errs[j] = store.Put(wctx, name, puts[j].Index, puts[j].Data)
							c.reportOutcome(addr, errs[j])
						}
					}
					atomic.AddInt64(&inflight, -int64(len(puts)))
					canceled := wctx.Err() != nil
					overBudget := false
					for j := range puts {
						if err := errs[j]; err != nil {
							atomic.AddInt64(count, -1)
							if zcount != nil {
								atomic.AddInt64(zcount, -1)
							}
							if canceled || overBudget {
								continue
							}
							if atomic.AddInt64(&failed, 1) > failureBudget {
								overBudget = true
								continue
							}
							retry <- puts[j].Index // hand it to a healthier worker
							continue
						}
						atomic.AddInt64(&bytesSent, int64(len(puts[j].Data)))
						if !firstCommit.Swap(true) {
							tr.StageDetail("first-commit", addr)
						}
						placeMu.Lock()
						placed[addr] = append(placed[addr], puts[j].Index)
						placeMu.Unlock()
						if atomic.AddInt64(&committed, 1) >= int64(n) {
							if !targetReached.Swap(true) {
								tr.Stage("commit-target")
							}
							cancel() // enough blocks on disk: stop the rest
						}
					}
					if overBudget {
						cancel()
						return
					}
				}
			}(addr, store)
		}
	}
	wg.Wait()

	stats = WriteStats{
		K: k, N: n,
		Committed:  int(atomic.LoadInt64(&committed)),
		BytesSent:  atomic.LoadInt64(&bytesSent),
		Duration:   time.Since(start),
		PerServer:  countPlacement(placed),
		FailedPuts: int(atomic.LoadInt64(&failed)),
	}
	if tr != nil {
		tr.Stagef("per-server", "blocks=%v failed-puts=%d", stats.PerServer, stats.FailedPuts)
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	if stats.Committed < n {
		// Graceful degradation (opt-in): commit what survived when it
		// still clears the degraded floor — comfortably above the LT
		// decode threshold — rather than discarding a recoverable
		// segment because some servers were down. The segment is
		// marked Degraded so Repair can later restore full redundancy.
		if !c.opts.DegradedWrites || stats.Committed < floorInt(k, c.opts.DegradedFloor) {
			return stats, fmt.Errorf("%w: %d of %d (%d puts failed)",
				ErrShortWrite, stats.Committed, n, stats.FailedPuts)
		}
		stats.Degraded = true
	}

	seg := metadata.Segment{
		Name: name,
		Size: int64(len(data)),
		Coding: metadata.Coding{
			Algorithm:  "lt",
			K:          k,
			N:          n,
			BlockBytes: c.opts.BlockBytes,
			C:          c.opts.LTC,
			Delta:      c.opts.LTDelta,
			GraphSeed:  seed,
			GraphN:     graphN,
			ShareCRC:   sealed,
		},
		Placement: placed,
		Degraded:  stats.Degraded,
	}
	if err := c.meta.CreateSegment(seg); err != nil {
		return stats, err
	}
	tr.Stage("metadata")
	if stats.Degraded {
		c.m.writeDegraded.Inc()
		tr.StageDetail("degraded-commit", fmt.Sprintf("%d/%d", stats.Committed, n))
		return stats, fmt.Errorf("%w: %d of %d blocks (floor %d)",
			ErrDegradedWrite, stats.Committed, n, floorInt(k, c.opts.DegradedFloor))
	}
	return stats, nil
}

// floorInt is the degraded-commit floor ceil((1+floor)·K).
func floorInt(k int, floor float64) int {
	return int(math.Ceil((1 + floor) * float64(k)))
}

// storePutter is the write-path slice of blockstore.Store.
type storePutter interface {
	Put(ctx context.Context, segment string, index int, data []byte) error
}

// putBatcher is the batched write-path slice of blockstore.Batcher.
type putBatcher interface {
	PutBatch(ctx context.Context, segment string, puts []blockstore.BatchPut) []error
}

// batchDeleter is the batched delete slice of blockstore.Batcher.
type batchDeleter interface {
	DeleteBatch(ctx context.Context, segment string, indices []int) []error
}

func countPlacement(p map[string][]int) map[string]int {
	out := make(map[string]int, len(p))
	for addr, idx := range p {
		out[addr] = len(idx)
	}
	return out
}

// Delete removes a segment's blocks from every holder — in parallel,
// one goroutine per server, using the batch delete when the store
// offers it — then drops its metadata. Per-server failures are
// aggregated with errors.Join; block deletions on unreachable servers
// are reported but do not abort the operation.
func (c *Client) Delete(ctx context.Context, name string) error {
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return err
	}
	defer unlock()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return err
	}
	var (
		mu   sync.Mutex
		errs []error
		wg   sync.WaitGroup
	)
	for addr, indices := range seg.Placement {
		store, ok := c.store(addr)
		if !ok {
			errs = append(errs, fmt.Errorf("robust: server %q unreachable during delete", addr))
			continue
		}
		wg.Add(1)
		go func(store blockstore.Store, indices []int) {
			defer wg.Done()
			if err := deleteBlocks(ctx, store, name, indices); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(store, indices)
	}
	wg.Wait()
	if err := c.meta.DeleteSegment(name); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// deleteBlocks removes one server's blocks, batched when possible.
func deleteBlocks(ctx context.Context, store blockstore.Store, name string, indices []int) error {
	if bd, ok := store.(batchDeleter); ok && len(indices) > 1 {
		return errors.Join(bd.DeleteBatch(ctx, name, indices)...)
	}
	var errs []error
	for _, i := range indices {
		if cerr := ctx.Err(); cerr != nil {
			errs = append(errs, cerr)
			break
		}
		if err := store.Delete(ctx, name, i); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
