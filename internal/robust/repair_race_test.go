package robust

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// TestRepairRacesConcurrentUpdate runs Repair concurrently with
// in-place Updates to disjoint regions of the same segment. The
// metadata write lock serializes the mutations, so whatever
// interleaving the scheduler picks, the final read must show every
// patch applied and fully redundant placement — and the whole dance
// must be clean under -race.
func TestRepairRacesConcurrentUpdate(t *testing.T) {
	c, stores := newTestClient(t, 5, Options{BlockBytes: 1 << 10, MaxServerShare: 0.3})
	ctx := context.Background()
	data := randData(16<<10, 41) // K=16
	if _, err := c.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}

	// Knock some shares out so the repairs have real work.
	seg, err := c.meta.LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	for i, held := range []([]int){seg.Placement["mem-00"], seg.Placement["mem-01"]} {
		if len(held) > 0 {
			if err := stores[i].Delete(ctx, "seg", held[0]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Disjoint 512-byte patches at 2KB strides; applied in any order
	// they commute.
	want := append([]byte(nil), data...)
	patches := make([][]byte, 6)
	for p := range patches {
		patch := randData(512, int64(100+p))
		patches[p] = patch
		copy(want[p*2048:], patch)
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(patches)+3)
	for p, patch := range patches {
		wg.Add(1)
		go func(offset int64, patch []byte) {
			defer wg.Done()
			if err := c.Update(ctx, "seg", offset, patch); err != nil {
				errs <- err
			}
		}(int64(p*2048), patch)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Repair(ctx, "seg"); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, _, err := c.Read(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent repair/update lost a patch")
	}
	// Redundancy fully restored despite the interleaving.
	audit, err := c.Audit(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if audit.NeedsRepair() {
		t.Fatalf("post-race audit still needs repair: %+v", audit)
	}
}

// TestRepairIdempotent verifies a second repair pass over an
// already-healed segment is a no-op: nothing regenerated, nothing
// pruned, placement unchanged.
func TestRepairIdempotent(t *testing.T) {
	c, _ := newTestClient(t, 5, Options{BlockBytes: 4 << 10, MaxServerShare: 0.3})
	ctx := context.Background()
	data := randData(64<<10, 42)
	if _, err := c.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	c.DetachStore("mem-02")

	first, err := c.Repair(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if first.Regenerated == 0 && first.Pruned == 0 {
		t.Fatalf("first repair did nothing: %+v (did mem-02 hold no shares?)", first)
	}
	before, err := c.Stat("seg")
	if err != nil {
		t.Fatal(err)
	}

	second, err := c.Repair(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if second.Regenerated != 0 || second.Pruned != 0 || second.Promoted {
		t.Fatalf("second repair not idempotent: %+v", second)
	}
	after, err := c.Stat("seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Servers) != len(before.Servers) {
		t.Fatalf("placement changed: %v -> %v", before.Servers, after.Servers)
	}
	for addr, n := range before.Servers {
		if after.Servers[addr] != n {
			t.Fatalf("placement changed on %s: %d -> %d", addr, n, after.Servers[addr])
		}
	}
	got, _, err := c.Read(ctx, "seg")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after double repair: %v", err)
	}
}
