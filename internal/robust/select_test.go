package robust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/metadata"
)

// newZonedClient builds a client with servers registered across zones
// and with varying expected performance.
func newZonedClient(t *testing.T) *Client {
	t.Helper()
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// 3 zones x 3 servers; performance grows with index.
	for i := 0; i < 9; i++ {
		addr := fmt.Sprintf("srv-%d", i)
		c.AttachStore(addr, blockstore.NewMemStore())
		meta.RegisterServer(metadata.Server{
			Addr:         addr,
			Zone:         fmt.Sprintf("zone-%d", i%3),
			ExpectedMBps: float64(10 * (i + 1)),
		})
	}
	return c
}

func TestSelectServersCount(t *testing.T) {
	c := newZonedClient(t)
	sel, err := c.SelectServers(QoS{Servers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[string]bool{}
	for _, a := range sel {
		if seen[a] {
			t.Fatalf("duplicate selection %v", sel)
		}
		seen[a] = true
	}
	// 0 or oversized means all.
	sel, _ = c.SelectServers(QoS{})
	if len(sel) != 9 {
		t.Fatalf("default selection %d, want all 9", len(sel))
	}
	sel, _ = c.SelectServers(QoS{Servers: 99})
	if len(sel) != 9 {
		t.Fatalf("oversized selection %d, want all 9", len(sel))
	}
}

func TestSelectServersZoneSpread(t *testing.T) {
	c := newZonedClient(t)
	sel, err := c.SelectServers(QoS{Servers: 3, SpreadZones: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{}
	for _, srv := range c.Meta().Servers() {
		meta[srv.Addr] = srv.Zone
	}
	zones := map[string]bool{}
	for _, a := range sel {
		zones[meta[a]] = true
	}
	if len(zones) != 3 {
		t.Fatalf("3 servers landed in %d zones: %v", len(zones), sel)
	}
	// 6 servers over 3 zones: exactly 2 per zone.
	sel, _ = c.SelectServers(QoS{Servers: 6, SpreadZones: true, Seed: 5})
	perZone := map[string]int{}
	for _, a := range sel {
		perZone[meta[a]]++
	}
	for z, n := range perZone {
		if n != 2 {
			t.Fatalf("zone %s got %d servers: %v", z, n, sel)
		}
	}
}

func TestSelectServersPreferFast(t *testing.T) {
	c := newZonedClient(t)
	sel, err := c.SelectServers(QoS{Servers: 3, PreferFast: true})
	if err != nil {
		t.Fatal(err)
	}
	// The three fastest are srv-8, srv-7, srv-6 (90/80/70 MBps).
	want := map[string]bool{"srv-8": true, "srv-7": true, "srv-6": true}
	for _, a := range sel {
		if !want[a] {
			t.Fatalf("PreferFast selected %v", sel)
		}
	}
}

func TestSelectServersDeterministicSeed(t *testing.T) {
	c := newZonedClient(t)
	a, _ := c.SelectServers(QoS{Servers: 5, Seed: 42})
	b, _ := c.SelectServers(QoS{Servers: 5, Seed: 42})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different selections: %v vs %v", a, b)
		}
	}
}

func TestSelectServersNoServers(t *testing.T) {
	meta := metadata.NewService()
	c, _ := NewClient(meta, Options{})
	if _, err := c.SelectServers(QoS{}); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteWithQoSRoundTrip(t *testing.T) {
	c := newZonedClient(t)
	ctx := context.Background()
	data := randData(100<<10, 42)
	ws, err := c.WriteWithQoS(ctx, "qos-obj", data, QoS{Servers: 6, SpreadZones: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.PerServer) > 6 {
		t.Fatalf("wrote to %d servers, QoS asked for 6", len(ws.PerServer))
	}
	got, _, err := c.Read(ctx, "qos-obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
}

func TestReadAtBounds(t *testing.T) {
	c := newZonedClient(t)
	ctx := context.Background()
	data := randData(50<<10, 43)
	if _, err := c.Write(ctx, "ra", data, nil); err != nil {
		t.Fatal(err)
	}
	part, _, err := c.ReadAt(ctx, "ra", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[100:300]) {
		t.Fatal("ReadAt slice wrong")
	}
	// Clamped tail read.
	tail, _, err := c.ReadAt(ctx, "ra", int64(len(data))-10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, data[len(data)-10:]) {
		t.Fatal("tail ReadAt wrong")
	}
	if _, _, err := c.ReadAt(ctx, "ra", -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := c.ReadAt(ctx, "ra", int64(len(data))+5, 1); err == nil {
		t.Fatal("past-end offset accepted")
	}
}
