package robust

import "repro/internal/metadata"

// chunkView is the per-chunk geometry the read, repair, and update
// paths iterate over. A chunked segment (written by the streaming
// path with ChunkBytes set) stores one coding graph per chunk, each
// owning a fixed stride of the global coded-index space; a legacy
// whole-segment record yields exactly one view covering everything,
// so every consumer handles both layouts with the same loop.
type chunkView struct {
	index  int             // chunk ordinal
	base   int             // first global coded index (index * stride)
	orig   int             // first original block ordinal
	offset int64           // first payload byte
	size   int64           // payload bytes in this chunk
	coding metadata.Coding // per-chunk coding record, graph-buildable
}

// segmentChunks expands a segment record into its chunk views.
func segmentChunks(seg metadata.Segment) []chunkView {
	if len(seg.Chunks) == 0 {
		return []chunkView{{size: seg.Size, coding: seg.Coding}}
	}
	out := make([]chunkView, len(seg.Chunks))
	base, orig := 0, 0
	off := int64(0)
	for i, ch := range seg.Chunks {
		cod := seg.Coding
		cod.K, cod.N = ch.K, ch.N
		cod.GraphSeed, cod.GraphN = ch.GraphSeed, ch.GraphN
		out[i] = chunkView{
			index: i, base: base, orig: orig,
			offset: off, size: ch.Size, coding: cod,
		}
		base += seg.ChunkStride
		orig += ch.K
		off += ch.Size
	}
	return out
}

// chunkFor maps a global coded index to its chunk and local graph
// index. stride is seg.ChunkStride (zero for legacy single-graph
// segments, whose only view spans the whole index space). ok is
// false for indices outside every chunk's graph — corrupt metadata
// or placement.
func chunkFor(views []chunkView, stride, idx int) (ci, local int, ok bool) {
	if idx < 0 {
		return 0, 0, false
	}
	if stride == 0 {
		return 0, idx, true // the view's decoder range-checks idx
	}
	ci = idx / stride
	if ci >= len(views) {
		return 0, 0, false
	}
	return ci, idx - ci*stride, true
}
