package robust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/obs"
)

// TestRejectedShareCounted is the regression test for the read
// accounting gap: a share the server returns but the decoder refuses
// (its index is outside the coding graph — corrupt placement
// metadata) was counted in neither FailedGets nor CorruptShares, so a
// read could lose shares with every stat claiming a clean run. It
// must surface in ReadStats.RejectedShares and the
// robust_read_rejected_shares_total counter.
func TestRejectedShareCounted(t *testing.T) {
	reg := obs.NewRegistry()
	c, stores := newTestClient(t, 1, Options{
		BlockBytes: 4 << 10,
		// No share CRC: the corrupt-placement share must pass envelope
		// verification and reach the decoder.
		DisableShareChecksums: true,
		Obs:                   reg,
	})
	ctx := context.Background()
	if _, err := c.Write(ctx, "obj", randData(8<<10, 11), nil); err != nil { // K=2
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("obj")
	if err != nil {
		t.Fatal(err)
	}
	addr := "mem-00"
	// Corrupt the placement: keep one good share (decode needs K=2, so
	// the read cannot complete and the rejected share can never race
	// with early cancellation) and add an index beyond the graph, with
	// real bytes stored under it so the GET succeeds.
	badIdx := seg.Coding.GraphN + 7
	if err := stores[0].Put(ctx, "obj", badIdx, []byte("not a real share")); err != nil {
		t.Fatal(err)
	}
	seg.Placement = map[string][]int{addr: {seg.Placement[addr][0], badIdx}}
	if err := c.meta.UpdateSegment(seg); err != nil {
		t.Fatal(err)
	}

	_, stats, err := c.Read(ctx, "obj")
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("Read = %v, want ErrUnrecoverable (only 1 of K=2 usable shares)", err)
	}
	if stats.RejectedShares != 1 {
		t.Errorf("RejectedShares = %d, want 1", stats.RejectedShares)
	}
	if stats.FailedGets != 0 || stats.CorruptShares != 0 {
		t.Errorf("rejected share leaked into other stats: %+v", stats)
	}
	if got := reg.Snapshot().Counters["robust_read_rejected_shares_total"]; got != 1 {
		t.Errorf("robust_read_rejected_shares_total = %d, want 1", got)
	}
}

// barrierStore blocks every DeleteBatch until all expected servers
// have one in flight: the test hangs (and times out) unless
// Client.Delete really fans out in parallel.
type barrierStore struct {
	*blockstore.MemStore
	calls   *atomic.Int64
	arrived *sync.WaitGroup
	allIn   chan struct{}
}

func (b barrierStore) DeleteBatch(ctx context.Context, segment string, indices []int) []error {
	b.calls.Add(1)
	b.arrived.Done()
	select {
	case <-b.allIn:
	case <-time.After(10 * time.Second):
		errs := make([]error, len(indices))
		for i := range errs {
			errs[i] = fmt.Errorf("robust test: DeleteBatch never ran in parallel")
		}
		return errs
	}
	return b.MemStore.DeleteBatch(ctx, segment, indices)
}

// TestDeleteParallelBatched proves Delete issues one batched wipe per
// server, concurrently across servers.
func TestDeleteParallelBatched(t *testing.T) {
	const servers = 4
	meta := metadata.NewService()
	// Cap each server's share so every server must hold part of the
	// segment (4 x 0.3 barely covers N): the delete must fan out to
	// all of them.
	c, err := NewClient(meta, Options{BlockBytes: 4 << 10, MaxServerShare: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	var arrived sync.WaitGroup
	allIn := make(chan struct{})
	mems := make([]*blockstore.MemStore, servers)
	for i := range mems {
		mems[i] = blockstore.NewMemStore()
		st := barrierStore{MemStore: mems[i], calls: &calls, arrived: &arrived, allIn: allIn}
		if err := c.AttachStore(fmt.Sprintf("s%d", i), st); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if _, err := c.Write(ctx, "obj", randData(64<<10, 12), nil); err != nil {
		t.Fatal(err)
	}
	seg, err := meta.LookupSegment("obj")
	if err != nil {
		t.Fatal(err)
	}
	for addr, idx := range seg.Placement {
		if len(idx) < 2 {
			t.Fatalf("server %s holds %d blocks; share cap should force >= 2 everywhere", addr, len(idx))
		}
	}
	if len(seg.Placement) != servers {
		t.Fatalf("placement covers %d of %d servers", len(seg.Placement), servers)
	}
	arrived.Add(servers)
	go func() { arrived.Wait(); close(allIn) }()
	if err := c.Delete(ctx, "obj"); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != servers {
		t.Errorf("DeleteBatch calls = %d, want exactly %d (one batch per server)", got, servers)
	}
	for i, m := range mems {
		if idx, err := m.List(ctx, "obj"); err != nil || len(idx) != 0 {
			t.Errorf("server %d still holds %d blocks (err %v)", i, len(idx), err)
		}
	}
	if _, err := c.Stat("obj"); !errors.Is(err, metadata.ErrSegmentNotFound) {
		t.Errorf("Stat after delete = %v, want ErrSegmentNotFound", err)
	}
}

// TestDeletePartialFailureAggregates checks that a dead server does
// not abort the wipe: live servers are cleared, metadata is dropped,
// and the dead server's failure comes back aggregated.
func TestDeletePartialFailureAggregates(t *testing.T) {
	c, stores := newTestClient(t, 3, Options{BlockBytes: 4 << 10, MaxServerShare: 0.4})
	ctx := context.Background()
	if _, err := c.Write(ctx, "obj", randData(64<<10, 13), nil); err != nil {
		t.Fatal(err)
	}
	stores[0].Close()
	err := c.Delete(ctx, "obj")
	if !errors.Is(err, blockstore.ErrClosed) {
		t.Fatalf("Delete over a closed server = %v, want ErrClosed inside the join", err)
	}
	for i, m := range stores[1:] {
		if idx, lerr := m.List(ctx, "obj"); lerr != nil || len(idx) != 0 {
			t.Errorf("live server %d still holds %d blocks (err %v)", i+1, len(idx), lerr)
		}
	}
	if _, serr := c.Stat("obj"); !errors.Is(serr, metadata.ErrSegmentNotFound) {
		t.Errorf("metadata survived partial-failure delete: %v", serr)
	}
}

// TestBatchedWriteReadDisabled pins the BatchBlocks=1 escape hatch:
// with batching off the client must round-trip through the single-
// block pipeline unchanged.
func TestBatchedWriteReadDisabled(t *testing.T) {
	c, _ := newTestClient(t, 4, Options{BlockBytes: 4 << 10, BatchBlocks: 1})
	ctx := context.Background()
	data := randData(120<<10, 14)
	if _, err := c.Write(ctx, "obj", data, nil); err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Read(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs with batching disabled")
	}
	if stats.FailedGets != 0 || stats.RejectedShares != 0 {
		t.Fatalf("unbatched read not clean: %+v", stats)
	}
}
