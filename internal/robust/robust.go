// Package robust implements the RobuSTore client (Ch. 4): the
// component that encodes data with improved LT codes, speculatively
// spreads coded blocks across heterogeneous storage servers, and
// reconstructs data from whichever blocks return first.
//
// Write is rateless and adaptive (§4.3.2): one worker pipeline per
// server keeps pushing freshly generated coded blocks at that
// server's own pace until N blocks have committed globally, then the
// remaining work is canceled — fast servers naturally absorb more
// blocks. Read is speculative (§4.3.3): workers fan out GETs to every
// holder in parallel and the access is complete the moment the
// incremental peeling decoder recovers all K originals; outstanding
// requests are canceled through context propagation. Individual
// server failures, stalls, and missing blocks are tolerated as long
// as enough blocks survive — that is the point of the architecture.
package robust

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/ltcode"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/placement"
)

// Options configure a Client.
type Options struct {
	// Redundancy is D: stored redundant blocks per original block
	// (default 3, the paper's baseline).
	Redundancy float64
	// BlockBytes is the coded block size (default 1 MB).
	BlockBytes int64
	// ChunkBytes, when positive, splits each segment into fixed-size
	// chunks that are encoded and spread independently — the streaming
	// write path (WriteFrom) encodes one chunk while the next is still
	// arriving from the reader, so peak client buffering is O(chunk),
	// not O(segment), and the first block commits after one chunk's
	// worth of input instead of the whole segment. Each chunk owns a
	// fixed stride of the coded-index space and its own coding graph;
	// reads decode chunks independently. Zero (the default) keeps the
	// whole-segment single-graph layout. Must be at least BlockBytes.
	ChunkBytes int64
	// LTC and LTDelta are the robust-soliton parameters (default 1.0
	// and 0.1: ~0.3-0.5 reception overhead, per §5.2.4).
	LTC, LTDelta float64
	// PerServerParallel is the number of outstanding requests kept per
	// server during reads and writes (default 2: one in flight, one
	// queued — a disk pipeline).
	PerServerParallel int
	// GraphSlack is the number of extra coded blocks generated per
	// server beyond N, bounding rateless-write overshoot (default 4).
	GraphSlack int
	// MaxServerShare, when positive, caps the fraction of a segment's
	// blocks any single server may absorb during a rateless write
	// (§5.3.1: placement diversity for disaster recovery). With very
	// fast uniform servers an uncapped speculative write can
	// concentrate blocks on whichever server wins the race; a cap of
	// e.g. 0.25 forces at least four holders. Zero disables the cap
	// (the paper's pure speculative semantics).
	MaxServerShare float64
	// MaxZoneShare, when positive, caps the fraction of a segment's
	// committed shares any single failure domain (metadata zone) may
	// hold — the hard constraint that makes SpreadZones placement
	// survive the loss of a whole zone. Enforced during the rateless
	// write exactly like MaxServerShare (atomic reservation against
	// ceil(MaxZoneShare·N) per zone) and restored by the rebalancer
	// when drains or rejoins skew the spread. Zero disables the cap.
	// Servers absent from the metadata registry share the unnamed
	// zone.
	MaxZoneShare float64
	// HedgeReads enables hedged block fetches (§2.2.3/§6: speculative
	// access masks stragglers): when a share request has been
	// outstanding for a p99-ish delay, a second request for the same
	// share is issued — to another holder when the placement has one,
	// otherwise to the same server over a fresh connection (which
	// dodges per-connection stalls). First answer wins; the loser is
	// canceled.
	HedgeReads bool
	// HedgeDelay fixes the hedge trigger delay. Zero (the default)
	// adapts: the delay tracks the p99 of this access's completed
	// share fetches, clamped to [1ms, 2s], starting at 30ms before
	// any sample exists.
	HedgeDelay time.Duration
	// BatchBlocks is the number of coded blocks moved per backend
	// round trip on the hot paths when a store offers the batch fast
	// path (blockstore.Batcher): write workers claim runs of
	// BatchBlocks indices and ship each run as one batched put, and
	// readers fetch windows of BatchBlocks shares per holder (a hedge
	// promotes the whole remaining window to the alternate holder).
	// Stores without the fast path keep the per-block pipelines.
	// 1 disables batching; default 16.
	BatchBlocks int
	// DegradedWrites enables graceful degradation: a write that
	// cannot commit the full target N (servers unreachable) still
	// succeeds once it has committed at least the degraded floor
	// ceil((1+DegradedFloor)·K) blocks — comfortably above the LT
	// decode threshold of ~(1.3-1.5)·K (§5.2.4). The segment is
	// marked Degraded in metadata and the write returns a
	// stats-carrying error matching ErrDegradedWrite; Repair later
	// promotes the segment back to N and clears the mark. Off by
	// default: a short write fails with ErrShortWrite and commits
	// nothing.
	DegradedWrites bool
	// DegradedFloor is the minimum redundancy of a degraded commit
	// (default 0.75: floor = ceil(1.75·K) blocks). It must clear the
	// LT reception overhead with margin, or a degraded segment could
	// be undecodable the moment one more block drops.
	DegradedFloor float64
	// DisableShareChecksums turns off the per-share CRC-32C envelope.
	// By default every coded block is sealed at write time and
	// verified at read time; a corrupt share is rejected and
	// refetched instead of being fed to the decoder — one flipped bit
	// in one share would otherwise silently poison every original
	// block the decoder XORs it into.
	DisableShareChecksums bool
	// Obs, when non-nil, receives per-access metrics (robust_* counters
	// and latency histograms) and per-request stage traces. Nil keeps
	// the client entirely uninstrumented — the hot paths pay only nil
	// checks.
	Obs *obs.Registry
	// Health, when non-nil, receives per-server request outcomes and
	// vetoes placement: servers it reports Excluded are dropped from
	// write target sets, read fan-outs, and repair re-placement.
	// *health.Tracker implements it; the interface keeps the data path
	// free of a hard dependency on the detector.
	Health HealthTracker
}

// HealthTracker is the failure-detector surface the client feeds and
// consults. Implementations must be safe for concurrent use.
type HealthTracker interface {
	// ReportSuccess and ReportFailure record one request outcome
	// against a server address.
	ReportSuccess(addr string)
	ReportFailure(addr string)
	// Excluded reports whether the detector currently considers the
	// server Down — such servers are skipped for placement and fan-out.
	Excluded(addr string) bool
}

func (o Options) withDefaults() Options {
	if o.Redundancy == 0 {
		o.Redundancy = 3
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = 1 << 20
	}
	if o.LTC == 0 {
		o.LTC = 1.0
	}
	if o.LTDelta == 0 {
		o.LTDelta = 0.1
	}
	if o.PerServerParallel <= 0 {
		o.PerServerParallel = 2
	}
	if o.GraphSlack <= 0 {
		o.GraphSlack = 4
	}
	if o.DegradedFloor == 0 {
		o.DegradedFloor = 0.75
	}
	if o.BatchBlocks == 0 {
		o.BatchBlocks = 16
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Redundancy < 0.25 {
		return fmt.Errorf("robust: redundancy %v too low for LT decodability", o.Redundancy)
	}
	if o.BlockBytes < 1 {
		return fmt.Errorf("robust: non-positive block size")
	}
	if o.ChunkBytes != 0 && o.ChunkBytes < o.BlockBytes {
		return fmt.Errorf("robust: chunk size %d below block size %d", o.ChunkBytes, o.BlockBytes)
	}
	p := ltcode.Params{K: 2, C: o.LTC, Delta: o.LTDelta}
	return p.Validate()
}

// Errors. Every failure path in this package wraps one of these
// sentinels (or a sentinel from metadata/blockstore/transport), so
// callers can dispatch with errors.Is across the whole taxonomy.
var (
	// ErrNoServers reports a write with no attached storage servers.
	ErrNoServers = errors.New("robust: no storage servers attached")
	// ErrUnrecoverable reports a read that exhausted every stored
	// block without completing the decode.
	ErrUnrecoverable = errors.New("robust: data unrecoverable from surviving blocks")
	// ErrShortWrite reports a write that could not commit N blocks
	// (nor, with DegradedWrites, the degraded floor). Nothing was
	// recorded in metadata.
	ErrShortWrite = errors.New("robust: not enough blocks committed")
	// ErrCorruptShare reports a stored coded block whose CRC-32C
	// envelope failed verification even after a refetch. The share is
	// rejected before it can poison the decoder; the read proceeds
	// from other shares.
	ErrCorruptShare = errors.New("robust: share checksum mismatch")
	// ErrDegradedWrite reports a write that committed below the
	// target N but at or above the degraded floor. The segment WAS
	// created (marked Degraded in metadata) and is readable; Repair
	// restores full redundancy. Callers opting into DegradedWrites
	// should treat errors.Is(err, ErrDegradedWrite) as a warning, not
	// a failure.
	ErrDegradedWrite = errors.New("robust: write committed in degraded mode")
)

// Client is a RobuSTore client bound to a metadata service and a set
// of storage backends. Safe for concurrent use.
type Client struct {
	meta   metadata.API
	opts   Options
	obs    *obs.Registry
	m      clientMetrics
	health HealthTracker

	mu     sync.RWMutex
	stores map[string]blockstore.Store

	graphMu sync.Mutex
	graphs  map[graphKey]*ltcode.Graph
}

// NewClient creates a client over a metadata service — the embedded
// *metadata.Service or a *metadata.RemoteClient for a shared
// networked one. Backends are attached with AttachStore.
func NewClient(meta metadata.API, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		meta:   meta,
		opts:   opts,
		obs:    opts.Obs,
		m:      newClientMetrics(opts.Obs),
		health: opts.Health,
		stores: make(map[string]blockstore.Store),
		graphs: make(map[graphKey]*ltcode.Graph),
	}, nil
}

// Meta returns the client's metadata service.
func (c *Client) Meta() metadata.API { return c.meta }

// AttachStore registers a storage backend under an address. The
// backend may be a local store or a transport.Client for a remote
// server.
func (c *Client) AttachStore(addr string, store blockstore.Store) error {
	if addr == "" || store == nil {
		return fmt.Errorf("robust: AttachStore needs an address and a store")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores[addr] = store
	return nil
}

// DetachStore removes a backend (its blocks become unreachable; reads
// tolerate this as long as enough blocks survive elsewhere).
func (c *Client) DetachStore(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.stores, addr)
}

// Servers returns the attached backend addresses, sorted.
func (c *Client) Servers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.stores))
	for a := range c.stores {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (c *Client) store(addr string) (blockstore.Store, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.stores[addr]
	return s, ok
}

// reportOutcome feeds one request outcome to the failure detector. A
// "not found" or a corrupt-share error still proves the server
// answered, so both count as liveness successes; cancellation and
// deadline errors say nothing about the server and are dropped.
func (c *Client) reportOutcome(addr string, err error) {
	if c.health == nil {
		return
	}
	switch {
	case err == nil,
		errors.Is(err, blockstore.ErrNotFound),
		errors.Is(err, ErrCorruptShare):
		c.health.ReportSuccess(addr)
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		// No signal: the caller gave up, the server may be fine.
	default:
		c.health.ReportFailure(addr)
	}
}

// excluded reports whether the failure detector has evicted addr.
func (c *Client) excluded(addr string) bool {
	return c.health != nil && c.health.Excluded(addr)
}

// placementCandidates joins the attached backends with the metadata
// registry (zone, lifecycle state, capacity, performance) and the
// failure detector's verdicts — the full picture the placement
// manager selects from. Attached servers missing from the registry
// are still candidates (unknown zone, Active, zero hints), so a
// registry-less deployment keeps working.
func (c *Client) placementCandidates() []placement.Candidate {
	info := map[string]metadata.Server{}
	for _, srv := range c.meta.Servers() {
		info[srv.Addr] = srv
	}
	attached := c.Servers()
	cands := make([]placement.Candidate, 0, len(attached))
	for _, addr := range attached {
		srv := info[addr]
		cands = append(cands, placement.Candidate{
			Addr:          addr,
			Zone:          srv.Zone,
			State:         srv.State,
			ExpectedMBps:  srv.ExpectedMBps,
			CapacityBytes: srv.CapacityBytes,
			UsedBytes:     srv.UsedBytes,
			Down:          c.excluded(addr),
		})
	}
	return cands
}

// placementSelect runs one placement decision and records the
// placement_* metrics: every selection counts, and any selection the
// ladder had to serve from a degraded tier counts as a fallback.
func (c *Client) placementSelect(p placement.Policy) (placement.Selection, error) {
	sel, err := placement.Select(c.placementCandidates(), p)
	if err != nil {
		return sel, err
	}
	c.m.placementSelections.Inc()
	if sel.Tier != placement.TierActive {
		c.m.placementFallbacks.Inc()
	}
	return sel, nil
}

// writableServers returns the write-eligible attached backends: the
// first non-empty tier of the placement degrade ladder (Active and
// healthy; then Draining; then failure-detector-Down servers
// re-admitted last — attempting a doomed write produces a clean error
// and fresh detector evidence, while silently targeting nothing
// produces ErrNoServers on a cluster that merely flapped). Removed
// servers are never returned; an all-Removed cluster yields nil and
// the write fails with ErrNoServers, which is the point of removal.
func (c *Client) writableServers() []string {
	sel, err := c.placementSelect(placement.Policy{})
	if err != nil {
		return nil
	}
	return sel.Servers
}

// Pinger is the optional liveness probe a backend may offer;
// transport.Client implements it with the wire-level PING op.
type Pinger interface {
	Ping(ctx context.Context) error
}

// Probe checks one attached backend's liveness without touching data:
// the transport PING when the store offers one, otherwise a listing
// of a reserved segment name. Health probers plug this in as their
// probe function.
func (c *Client) Probe(ctx context.Context, addr string) error {
	store, ok := c.store(addr)
	if !ok {
		return fmt.Errorf("robust: server %q not attached", addr)
	}
	if p, ok := store.(Pinger); ok {
		return p.Ping(ctx)
	}
	_, err := store.List(ctx, "~health-probe")
	return err
}

// graphSeed derives a deterministic coding-graph seed from the
// segment identity, so the seed recorded in metadata is reproducible.
func graphSeed(name string, size int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(size >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// splitBlocks cuts data into K zero-padded blocks of BlockBytes. All
// blocks are carved from one zeroed backing array — two allocations
// instead of K+1 — with capacities pinned so no append can bleed into
// a neighbor.
func splitBlocks(data []byte, blockBytes int64) [][]byte {
	k := int((int64(len(data)) + blockBytes - 1) / blockBytes)
	if k == 0 {
		k = 1
	}
	backing := make([]byte, int64(k)*blockBytes)
	copy(backing, data)
	out := make([][]byte, k)
	for i := 0; i < k; i++ {
		lo, hi := int64(i)*blockBytes, int64(i+1)*blockBytes
		out[i] = backing[lo:hi:hi]
	}
	return out
}

// buildGraph reconstructs a segment's coding graph from its metadata.
func buildGraph(coding metadata.Coding) (*ltcode.Graph, error) {
	p := ltcode.Params{K: coding.K, C: coding.C, Delta: coding.Delta}
	n := coding.GraphN
	if n == 0 {
		n = coding.N
	}
	return ltcode.BuildGraph(p, n, rand.New(rand.NewSource(coding.GraphSeed)), ltcode.DefaultGraphOptions())
}

// graphKey identifies a coding graph: construction is deterministic
// in these fields, so equal keys yield identical graphs.
type graphKey struct {
	k, n     int
	c, delta float64
	seed     int64
}

// graphCacheCap bounds the per-client graph memo. Graphs are a few
// hundred KB of neighbor lists at most; a handful covers the hot
// working set (repeated reads of the same segments).
const graphCacheCap = 16

// cachedGraph memoizes buildGraph per client. Graph construction with
// EnsureDecodable runs a symbolic decode per candidate — milliseconds
// of pure CPU that every read and write of the same segment would
// otherwise repeat. Graphs are immutable, so sharing is safe.
func (c *Client) cachedGraph(coding metadata.Coding) (*ltcode.Graph, error) {
	n := coding.GraphN
	if n == 0 {
		n = coding.N
	}
	key := graphKey{k: coding.K, n: n, c: coding.C, delta: coding.Delta, seed: coding.GraphSeed}
	c.graphMu.Lock()
	g, ok := c.graphs[key]
	c.graphMu.Unlock()
	if ok {
		return g, nil
	}
	g, err := buildGraph(coding)
	if err != nil {
		return nil, err
	}
	c.graphMu.Lock()
	if len(c.graphs) >= graphCacheCap {
		for k := range c.graphs { // drop an arbitrary entry; a memo, not an LRU
			delete(c.graphs, k)
			break
		}
	}
	c.graphs[key] = g
	c.graphMu.Unlock()
	return g, nil
}

// batchOutcome condenses a batch's per-entry errors into the one
// outcome reported to the failure detector: any successful entry
// proves the server answered, and among failures a non-cancellation
// error is preferred (reportOutcome treats cancellations as
// signal-free).
func (c *Client) batchOutcome(errs []error) error {
	var out error
	for _, e := range errs {
		if e == nil {
			return nil
		}
		if out == nil || errors.Is(out, context.Canceled) || errors.Is(out, context.DeadlineExceeded) {
			out = e
		}
	}
	return out
}

// WriteStats reports one write access.
type WriteStats struct {
	K, N       int
	Committed  int // blocks on servers (>= N on success; overshoot included)
	BytesSent  int64
	Duration   time.Duration
	PerServer  map[string]int
	FailedPuts int
	// FirstCommit is the latency to the first block landing on any
	// server — the write path's first-byte metric. A chunked streaming
	// write commits its first block after one chunk of input, long
	// before the segment finishes arriving.
	FirstCommit time.Duration
	// Degraded reports a graceful-degradation commit: Committed is
	// below N but at/above the degraded floor and the segment was
	// created marked Degraded.
	Degraded bool
}

// ReadStats reports one read access.
type ReadStats struct {
	K           int
	Received    int // blocks delivered before completion
	Reception   float64
	Duration    time.Duration
	PerServer   map[string]int
	FailedGets  int
	UsedDecoder int // blocks that contributed a decoded original
	// CorruptShares counts shares rejected by CRC verification
	// (including refetched copies that were corrupt again).
	CorruptShares int
	// RejectedShares counts delivered shares the decoder refused —
	// an index outside the coding graph, i.e. corrupt metadata or
	// placement. They appear in neither FailedGets (the GET worked)
	// nor CorruptShares (the envelope verified); dropping them
	// silently once hid that accounting gap.
	RejectedShares int
	// Hedges counts hedge requests issued; HedgeWins counts the ones
	// whose answer arrived before the original's.
	Hedges    int
	HedgeWins int
}
