package robust

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/transport"
)

// muxChaosWorkload drives the three contended paths of ISSUE 7's mux
// chaos scenario concurrently over the SAME multiplexed connections:
// reads of a stalled object, audits (the scrub path), and fresh
// writes — all while the injectors reset connections underneath. Every
// round's data is verified; rounds is the per-goroutine iteration
// count.
func muxChaosWorkload(t *testing.T, client *Client, name string, data []byte, rounds int) {
	t.Helper()
	ctx := context.Background()
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // reader: decodes through stalls and hedges
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			got, _, err := client.Read(ctx, name)
			if err != nil {
				t.Errorf("mux chaos read %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, data) {
				t.Errorf("mux chaos read %d: data mismatch", i)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // scrubber: share-level verification rides along
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := client.Audit(ctx, name); err != nil {
				t.Errorf("mux chaos audit %d: %v", i, err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // writer: new segments land while the read stalls
		defer wg.Done()
		small := randData(64<<10, 91)
		for i := 0; i < rounds; i++ {
			obj := fmt.Sprintf("%s-w%d", name, i)
			if _, err := client.Write(ctx, obj, small, nil); err != nil {
				t.Errorf("mux chaos write %d: %v", i, err)
				return
			}
			got, _, err := client.Read(ctx, obj)
			if err != nil || !bytes.Equal(got, small) {
				t.Errorf("mux chaos write-read %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()
}

// TestChaosMuxStalledReadScrubWriteShareConn runs a stalled read, a
// scrub, and a write concurrently where every server connection is a
// single multiplexed conn (MuxConns 1) under injected stalls and
// connection resets: per-stream isolation must keep the siblings
// correct, and a reset must burn only the one conn it hits (the next
// exchange re-upgrades).
func TestChaosMuxStalledReadScrubWriteShareConn(t *testing.T) {
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 6,
		Options{BlockBytes: 8 << 10, Redundancy: 4, MaxServerShare: 0.25, HedgeReads: true, Obs: reg},
		transport.ClientOptions{MaxRetries: 3, RequestTimeout: 2 * time.Second, MuxConns: 1, Obs: reg})
	ctx := context.Background()
	data := randData(256<<10, 90)

	if _, err := client.Write(ctx, "muxchaos", data, nil); err != nil {
		t.Fatal(err)
	}

	// One server stalls half its gets; every wire occasionally resets
	// mid-exchange, which kills whole mux connections, streams and all.
	servers[0].storeInj.SetConfig(faultinject.Config{StallProb: 0.5, Stall: 300 * time.Millisecond, Ops: []string{"get"}})
	for _, cs := range servers {
		cs.connInj.SetConfig(faultinject.Config{ResetProb: 0.03})
	}

	muxChaosWorkload(t, client, "muxchaos", data, 6)

	snap := reg.Snapshot()
	if snap.Counters["transport_client_mux_dials_total"] == 0 {
		t.Fatal("workload never engaged the mux transport")
	}
	if snap.Counters["transport_client_mux_streams_total"] == 0 {
		t.Fatal("no mux streams opened")
	}
	t.Logf("mux chaos: %d dials, %d streams, %d conn failures, %d stream timeouts, %d resets",
		snap.Counters["transport_client_mux_dials_total"],
		snap.Counters["transport_client_mux_streams_total"],
		snap.Counters["transport_client_mux_conn_failures_total"],
		snap.Counters["transport_client_mux_stream_timeouts_total"],
		snap.Counters["transport_client_mux_resets_total"])
}

// TestSoakMuxChaosHighFaultRates is the nightly soak variant: the same
// shared-connection workload, but with much hotter fault injection
// (resets an order of magnitude more likely, longer stalls, corruption
// in the mix) and more rounds. Gated behind ROBUSTORE_SOAK so the PR
// gate never pays for it; CI's soak job sets the variable.
func TestSoakMuxChaosHighFaultRates(t *testing.T) {
	if os.Getenv("ROBUSTORE_SOAK") == "" {
		t.Skip("set ROBUSTORE_SOAK=1 to run soak scenarios")
	}
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 8,
		Options{BlockBytes: 8 << 10, Redundancy: 5, MaxServerShare: 0.2, HedgeReads: true, Obs: reg},
		transport.ClientOptions{MaxRetries: 5, RequestTimeout: 5 * time.Second, MuxConns: 2, Obs: reg})
	ctx := context.Background()
	data := randData(512<<10, 92)

	if _, err := client.Write(ctx, "muxsoak", data, nil); err != nil {
		t.Fatal(err)
	}

	servers[0].storeInj.SetConfig(faultinject.Config{StallProb: 0.8, Stall: 800 * time.Millisecond, Ops: []string{"get"}})
	servers[1].storeInj.SetConfig(faultinject.Config{CorruptProb: 0.3, Ops: []string{"get"}})
	for _, cs := range servers {
		cs.connInj.SetConfig(faultinject.Config{ResetProb: 0.1, ShortReadProb: 0.03})
	}

	muxChaosWorkload(t, client, "muxsoak", data, 25)

	snap := reg.Snapshot()
	if snap.Counters["transport_client_mux_dials_total"] == 0 {
		t.Fatal("soak workload never engaged the mux transport")
	}
	if snap.Counters["transport_client_mux_conn_failures_total"] == 0 {
		t.Error("10% reset probability burned no mux connections: faults never fired")
	}
	t.Logf("mux soak: %d dials, %d streams, %d conn failures, %d retries (%d won)",
		snap.Counters["transport_client_mux_dials_total"],
		snap.Counters["transport_client_mux_streams_total"],
		snap.Counters["transport_client_mux_conn_failures_total"],
		snap.Counters["transport_client_retries_total"],
		snap.Counters["transport_client_retry_successes_total"])
}
