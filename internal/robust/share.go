package robust

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Share envelope: every coded block is framed [magic u32][crc32c u32]
// [payload] at write time and verified at read time. LT decoding is
// pure XOR accumulation — a single flipped bit in a single accepted
// share silently corrupts every original block whose neighborhood
// includes it, and the read still "succeeds". The CRC turns silent
// poisoning into a rejected share: just another erasure, which the
// architecture tolerates by design. Checksumming is end-to-end
// (client seal → client verify), so it also catches transit
// corruption that server-side framing (blockstore.ChecksumStore)
// cannot see.

// shareMagic marks sealed shares so a mixed read (sealed segment,
// unsealed block or vice versa) fails loudly as corruption instead of
// feeding frame bytes to the decoder.
const shareMagic = 0x52534331 // "RSC1"

// shareCastagnoli is the CRC-32C table (hardware-accelerated widely).
var shareCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// shareOverhead is the envelope size in bytes.
const shareOverhead = 8

// sealShare frames a coded block with its checksum.
func sealShare(data []byte) []byte {
	out := make([]byte, shareOverhead+len(data))
	binary.BigEndian.PutUint32(out[0:4], shareMagic)
	binary.BigEndian.PutUint32(out[4:8], crc32.Checksum(data, shareCastagnoli))
	copy(out[shareOverhead:], data)
	return out
}

// openShare verifies and strips the envelope, returning
// ErrCorruptShare (wrapped with detail) on any mismatch.
func openShare(framed []byte) ([]byte, error) {
	if len(framed) < shareOverhead {
		return nil, fmt.Errorf("%w: envelope truncated (%d bytes)", ErrCorruptShare, len(framed))
	}
	if binary.BigEndian.Uint32(framed[0:4]) != shareMagic {
		return nil, fmt.Errorf("%w: envelope magic missing", ErrCorruptShare)
	}
	want := binary.BigEndian.Uint32(framed[4:8])
	data := framed[shareOverhead:]
	if crc32.Checksum(data, shareCastagnoli) != want {
		return nil, ErrCorruptShare
	}
	return data, nil
}
