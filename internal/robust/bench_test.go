package robust

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/metadata"
)

// Benchmarks for the real client stack over in-memory stores: these
// measure the library's own overheads (encode, fan-out, decode,
// locking) with storage latency at zero.

func benchClient(b *testing.B, servers int) *Client {
	b.Helper()
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < servers; i++ {
		if err := c.AttachStore(fmt.Sprintf("s%d", i), blockstore.NewMemStore()); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func BenchmarkClientWrite16MB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 1)
	ctx := context.Background()
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("w%d", i)
		if _, err := c.Write(ctx, name, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientRead16MB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 2)
	ctx := context.Background()
	if _, err := c.Write(ctx, "r", data, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Read(ctx, "r"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientUpdate256KB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 3)
	ctx := context.Background()
	if _, err := c.Write(ctx, "u", data, nil); err != nil {
		b.Fatal(err)
	}
	patch := randData(256<<10, 4)
	b.SetBytes(256 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Update(ctx, "u", 1<<20, patch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientHealth(b *testing.B) {
	c := benchClient(b, 8)
	ctx := context.Background()
	if _, err := c.Write(ctx, "h", randData(16<<20, 5), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Health(ctx, "h"); err != nil {
			b.Fatal(err)
		}
	}
}
