package robust

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/health"
	"repro/internal/metadata"
	"repro/internal/obs"
)

// Benchmarks for the real client stack over in-memory stores: these
// measure the library's own overheads (encode, fan-out, decode,
// locking) with storage latency at zero.

func benchClient(b *testing.B, servers int) *Client {
	b.Helper()
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < servers; i++ {
		if err := c.AttachStore(fmt.Sprintf("s%d", i), blockstore.NewMemStore()); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func BenchmarkClientWrite16MB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 1)
	ctx := context.Background()
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("w%d", i)
		if _, err := c.Write(ctx, name, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientWriteSteady16MB measures the steady-state write path:
// writing the same segment shape repeatedly, so the coding graph is
// cached and the share-buffer pool is warm. This is the allocs/op
// number DESIGN.md §10 budgets (the plain Write benchmark pays a graph
// cache miss per fresh name on top of it).
func BenchmarkClientWriteSteady16MB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 1)
	ctx := context.Background()
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(ctx, "steady", data, nil); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := c.Delete(ctx, "steady"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkClientWriteStream16MB measures the pipelined streaming
// write path at steady state: 16 MB arriving through an io.Reader in
// 2 MB chunks, each chunk encoded and spread while the next is still
// being ingested, with warm graph cache and share-buffer pool (the
// WriteSteady methodology). stream_first_commit_ms is the write-path
// first-byte latency — how long until the first block is durable —
// and the headline the streaming path exists for: it must sit well
// below the whole-segment faultfree_write_bare_ms, which cannot
// commit anything until the entire segment has been encoded.
func BenchmarkClientWriteStream16MB(b *testing.B) {
	meta := metadata.NewService()
	c, err := NewClient(meta, Options{BlockBytes: 256 << 10, ChunkBytes: 2 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.AttachStore(fmt.Sprintf("s%d", i), blockstore.NewMemStore()); err != nil {
			b.Fatal(err)
		}
	}
	data := randData(16<<20, 7)
	ctx := context.Background()
	b.SetBytes(16 << 20)
	var first, total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		ws, err := c.WriteFrom(ctx, "stream", bytes.NewReader(data), int64(len(data)), nil)
		if err != nil {
			b.Fatal(err)
		}
		total += time.Since(t0)
		first += ws.FirstCommit
		b.StopTimer()
		if err := c.Delete(ctx, "stream"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	perOpMs := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / 1000 / float64(b.N)
	}
	b.ReportMetric(perOpMs(total), "stream_write_16mb_ms")
	b.ReportMetric(perOpMs(first), "stream_first_commit_ms")
}

func BenchmarkClientRead16MB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 2)
	ctx := context.Background()
	if _, err := c.Write(ctx, "r", data, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Read(ctx, "r"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClientUpdate256KB(b *testing.B) {
	c := benchClient(b, 8)
	data := randData(16<<20, 3)
	ctx := context.Background()
	if _, err := c.Write(ctx, "u", data, nil); err != nil {
		b.Fatal(err)
	}
	patch := randData(256<<10, 4)
	b.SetBytes(256 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Update(ctx, "u", 1<<20, patch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonFaultFree measures the fault-free data path with the
// whole self-healing stack live (failure detector fed by every
// request, prober, scrub/repair daemon walking the namespace) against
// the bare client. The two variants' read/write latencies are the
// baseline evidence that the control plane rides along for free when
// nothing is broken; BENCH_4.json records both.
func BenchmarkDaemonFaultFree(b *testing.B) {
	for _, selfheal := range []bool{false, true} {
		name := "bare"
		if selfheal {
			name = "selfheal"
		}
		b.Run(name, func(b *testing.B) {
			meta := metadata.NewService()
			opts := Options{BlockBytes: 256 << 10}
			var tracker *health.Tracker
			var reg *obs.Registry
			if selfheal {
				reg = obs.NewRegistry()
				tracker = health.NewTracker(health.Options{Obs: reg})
				opts.Obs = reg
				opts.Health = tracker
			}
			c, err := NewClient(meta, opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				addr := fmt.Sprintf("s%d", i)
				if err := c.AttachStore(addr, blockstore.WithChecksums(blockstore.NewMemStore())); err != nil {
					b.Fatal(err)
				}
			}
			if selfheal {
				prober := health.NewProber(tracker, c.Servers, c.Probe,
					health.ProberOptions{Interval: 5 * time.Millisecond, Obs: reg})
				prober.Start()
				defer prober.Stop()
				d := NewDaemon(c, DaemonOptions{ScrubInterval: 10 * time.Millisecond, Obs: reg})
				d.Start()
				defer d.Stop()
			}
			ctx := context.Background()
			data := randData(4<<20, 6)
			if _, err := c.Write(ctx, "seg", data, nil); err != nil {
				b.Fatal(err)
			}
			var writeTime, readTime time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := c.Write(ctx, fmt.Sprintf("w%d", i), data, nil); err != nil {
					b.Fatal(err)
				}
				t1 := time.Now()
				if _, _, err := c.Read(ctx, "seg"); err != nil {
					b.Fatal(err)
				}
				writeTime += t1.Sub(t0)
				readTime += time.Since(t1)
			}
			b.StopTimer()
			perOpMs := func(d time.Duration) float64 {
				return float64(d.Microseconds()) / 1000 / float64(b.N)
			}
			// Metric units double as baseline keys, so they carry the
			// variant name (see bench_baseline.sh).
			b.ReportMetric(perOpMs(writeTime), "faultfree_write_"+name+"_ms")
			b.ReportMetric(perOpMs(readTime), "faultfree_read_"+name+"_ms")
		})
	}
}

func BenchmarkClientHealth(b *testing.B) {
	c := benchClient(b, 8)
	ctx := context.Background()
	if _, err := c.Write(ctx, "h", randData(16<<20, 5), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Health(ctx, "h"); err != nil {
			b.Fatal(err)
		}
	}
}
