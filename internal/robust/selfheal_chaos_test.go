package robust

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/transport"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosSelfHealingEvictRepairRejoin is the full control-plane
// loop on real TCP servers: kill a server mid-life, the prober-fed
// failure detector must evict it, the scrub daemon must restore full
// redundancy on the survivors, and when the server comes back on the
// same address the detector must let it rejoin — all without any
// manual operation.
func TestChaosSelfHealingEvictRepairRejoin(t *testing.T) {
	reg := obs.NewRegistry()
	tracker := health.NewTracker(health.Options{
		SuspectAfter: 2,
		DownAfter:    4,
		DownTimeout:  150 * time.Millisecond,
		Obs:          reg,
	})
	client, servers := startChaosCluster(t, 5,
		Options{BlockBytes: 4 << 10, MaxServerShare: 0.3, Health: tracker, Obs: reg},
		transport.ClientOptions{MaxRetries: 1})
	ctx := context.Background()

	prober := health.NewProber(tracker, client.Servers, client.Probe,
		health.ProberOptions{Interval: 10 * time.Millisecond, Obs: reg})
	prober.Start()
	defer prober.Stop()
	daemon := NewDaemon(client, DaemonOptions{ScrubInterval: 25 * time.Millisecond, Obs: reg})
	daemon.Start()
	defer daemon.Stop()

	data := randData(64<<10, 99) // K=16
	if _, err := client.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}

	// Kill one server outright: connections drop, probes fail.
	dead := servers[0]
	dead.srv.Close()

	// The detector walks it Up → Suspect → Down and evicts it.
	waitUntil(t, 5*time.Second, "detector eviction", func() bool {
		return tracker.State(dead.addr) == health.Down
	})

	// The daemon notices the redundancy deficit and repairs it onto the
	// survivors: placement drops the dead holder and the deficit closes.
	waitUntil(t, 10*time.Second, "daemon repair", func() bool {
		audit, err := client.Audit(ctx, "seg")
		if err != nil || audit.NeedsRepair() {
			return false
		}
		info, err := client.Stat("seg")
		if err != nil {
			return false
		}
		_, onDead := info.Servers[dead.addr]
		return !onDead
	})

	got, _, err := client.Read(ctx, "seg")
	if err != nil {
		t.Fatalf("read after self-heal: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after self-heal")
	}

	// The server returns on the same address (fresh process, empty
	// disk). The next successful probe readmits it.
	ln, err := net.Listen("tcp", dead.addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", dead.addr, err)
	}
	restarted := transport.NewServer(
		blockstore.WithChecksums(blockstore.NewMemStore()), transport.ServerOptions{})
	go restarted.Serve(ln)
	t.Cleanup(func() { restarted.Close() })

	waitUntil(t, 5*time.Second, "detector rejoin", func() bool {
		return tracker.State(dead.addr) == health.Up
	})

	// A fresh write may target the rejoined server again.
	if _, err := client.Write(ctx, "seg2", randData(16<<10, 100), nil); err != nil {
		t.Fatalf("write after rejoin: %v", err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"health_evictions_total",
		"health_rejoins_total",
		"health_probes_total",
		"scrub_passes_total",
		"repair_queue_enqueued_total",
		"repair_queue_repaired_total",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("metric %s not recorded", name)
		}
	}
}

// TestChaosSelfHealingCorruptionSweep verifies the daemon turns
// server-side bit rot (beneath the wire, caught by the SCRUB op) into
// regenerated shares without a client read ever tripping on it.
func TestChaosSelfHealingCorruptionSweep(t *testing.T) {
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 4,
		Options{BlockBytes: 4 << 10, MaxServerShare: 0.3, Obs: reg},
		transport.ClientOptions{MaxRetries: 1})
	ctx := context.Background()

	data := randData(32<<10, 101) // K=8
	if _, err := client.Write(ctx, "seg", data, nil); err != nil {
		t.Fatal(err)
	}

	// Rot one share at rest, beneath the server's checksum layer — the
	// on-disk bit rot only the SCRUB op can surface.
	seg, err := client.meta.LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	rotAddr, rotIdx := "", -1
	for _, cs := range servers {
		if held := seg.Placement[cs.addr]; len(held) > 0 {
			rotAddr, rotIdx = cs.addr, held[0]
			framed, err := cs.mem.Get(ctx, "seg", rotIdx)
			if err != nil {
				t.Fatal(err)
			}
			rotten := append([]byte(nil), framed...)
			rotten[len(rotten)/2] ^= 0xFF
			if err := cs.mem.Put(ctx, "seg", rotIdx, rotten); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if rotAddr == "" {
		t.Fatal("no server holds a share to rot")
	}

	daemon := NewDaemon(client, DaemonOptions{ScrubInterval: 20 * time.Millisecond, Obs: reg})
	daemon.Start()
	defer daemon.Stop()

	waitUntil(t, 10*time.Second, "corruption detected", func() bool {
		return reg.Snapshot().Counters["scrub_corrupt_shares_total"] > 0
	})

	waitUntil(t, 10*time.Second, "corruption healed", func() bool {
		audit, err := client.Audit(ctx, "seg")
		return err == nil && !audit.NeedsRepair()
	})

	got, _, err := client.Read(ctx, "seg")
	if err != nil {
		t.Fatalf("read after corruption sweep: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after corruption sweep")
	}
}
