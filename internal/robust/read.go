package robust

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/ltcode"
)

// Read reconstructs a segment speculatively (§4.3.3): workers fan out
// block requests to every holder in parallel, each delivered block
// feeds the incremental peeling decoder, and the moment decoding
// completes every outstanding request is canceled. Missing blocks and
// failing servers are tolerated while any decodable subset survives.
func (c *Client) Read(ctx context.Context, name string) ([]byte, ReadStats, error) {
	unlock, err := c.meta.LockRead(ctx, name)
	if err != nil {
		return nil, ReadStats{}, err
	}
	defer unlock()
	return c.readLocked(ctx, name)
}

// readLocked performs the read while the caller holds a lock (shared
// by Read and Update).
func (c *Client) readLocked(ctx context.Context, name string) (data []byte, stats ReadStats, err error) {
	start := time.Now()
	tr := c.obs.StartTrace("read", name)
	defer func() {
		c.m.reads.Inc()
		c.m.readBlocks.Add(int64(stats.Received))
		c.m.readFailedGets.Add(int64(stats.FailedGets))
		c.m.readBytes.Add(int64(len(data)))
		c.m.readLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			c.m.readErrors.Inc()
		}
		tr.End(err)
	}()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return nil, ReadStats{}, err
	}
	tr.Stage("lookup")
	// One decoder per chunk: a chunked segment decodes each chunk's
	// graph independently (shares route to their chunk by index
	// stride), a legacy segment is a single chunk covering everything.
	views := segmentChunks(seg)
	decs := make([]*ltcode.Decoder, len(views))
	for i, v := range views {
		graph, gerr := c.cachedGraph(v.coding)
		if gerr != nil {
			return nil, ReadStats{}, gerr
		}
		decs[i] = ltcode.NewDecoder(graph)
	}
	if tr != nil {
		tr.Stagef("graph", "K=%d N=%d chunks=%d", seg.Coding.K, seg.Coding.N, len(views))
	}

	fx := newFetcher(c, name, seg.Coding.ShareCRC, seg.Placement)
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	window := c.opts.BatchBlocks
	if window < 1 {
		window = 1
	}
	var (
		wg     sync.WaitGroup
		failed atomic.Int64
		// Stage markers raced for by the fan-out workers: the first
		// delivered block and a worker observing completion and
		// canceling the rest (§4.3.3 early cancellation).
		firstByte, earlyCancel atomic.Bool
	)
	// Fan out to the attached holders the failure detector has not
	// evicted. If exclusion would silence every holder, fall back to
	// all attached ones: a read against suspect servers can still
	// succeed (and its outcomes refresh the detector), a read against
	// nobody cannot.
	targets := make(map[string]blockstore.Store, len(seg.Placement))
	skipped := make(map[string]blockstore.Store)
	for addr := range seg.Placement {
		store, ok := c.store(addr)
		if !ok {
			continue // server gone; speculative access shrugs
		}
		if c.excluded(addr) {
			skipped[addr] = store
			continue
		}
		targets[addr] = store
	}
	if len(targets) == 0 {
		targets = skipped
	}
	if tr != nil {
		tr.Stagef("fanout", "servers=%d excluded=%d", len(targets), len(seg.Placement)-len(targets))
	}
	// The decoder runs on its own goroutine fed by a channel: LT
	// peeling is inherently single-threaded, and funneling shares
	// through a channel keeps the decoder lock (and its contention)
	// out of the network workers' hot path entirely. The goroutine
	// owns the decoder, the per-server receive counts, and the
	// rejected-share count; all are read only after it exits.
	type deliveredShare struct {
		addr    string
		idx     int
		payload []byte
	}
	shares := make(chan deliveredShare, 4*window)
	decodeDone := make(chan struct{})
	received := make(map[string]int, len(targets))
	rejected := 0
	var decComplete atomic.Bool
	go func() {
		defer close(decodeDone)
		remaining := len(views)
		for s := range shares {
			ci, local, ok := chunkFor(views, seg.ChunkStride, s.idx)
			if !ok {
				// No chunk owns this index (corrupt metadata or
				// placement). Neither a failed GET nor a CRC reject;
				// count it instead of dropping it silently.
				rejected++
				c.m.readRejectedShares.Inc()
				continue
			}
			dec := decs[ci]
			if dec.Complete() {
				continue // drain so no worker blocks on send
			}
			if _, aerr := dec.AddData(local, s.payload); aerr != nil {
				// The chunk's graph cannot place this share either.
				rejected++
				c.m.readRejectedShares.Inc()
				continue
			}
			received[s.addr]++
			if dec.Complete() {
				if remaining--; remaining == 0 {
					decComplete.Store(true)
					tr.Stage("decode-complete")
					cancel()
				}
			}
		}
	}()
	for addr, indices := range seg.Placement {
		store, ok := targets[addr]
		if !ok {
			continue
		}
		// Split the server's block list among its worker pipelines;
		// each pipeline walks its share of the list in batch windows.
		for w := 0; w < c.opts.PerServerParallel; w++ {
			wg.Add(1)
			go func(addr string, store storeGetter, mine []int) {
				defer wg.Done()
				deliver := func(idx int, payload []byte) {
					if !firstByte.Swap(true) {
						tr.StageDetail("first-byte", addr)
					}
					select {
					case shares <- deliveredShare{addr: addr, idx: idx, payload: payload}:
					case <-rctx.Done():
					}
				}
				for lo := 0; lo < len(mine); lo += window {
					if rctx.Err() != nil {
						return
					}
					if decComplete.Load() {
						if !earlyCancel.Swap(true) {
							tr.Stage("early-cancel")
						}
						cancel()
						return
					}
					hi := lo + window
					if hi > len(mine) {
						hi = len(mine)
					}
					failed.Add(int64(fx.fetchWindow(rctx, addr, store, mine[lo:hi], deliver)))
				}
			}(addr, store, stripeSlice(indices, w, c.opts.PerServerParallel))
		}
	}
	wg.Wait()
	close(shares)
	<-decodeDone

	totalReceived, totalUsed := 0, 0
	complete := true
	for _, dec := range decs {
		totalReceived += dec.Received()
		totalUsed += dec.UsedBlocks()
		complete = complete && dec.Complete()
	}
	stats = ReadStats{
		K:              seg.Coding.K,
		Received:       totalReceived,
		Reception:      float64(totalReceived)/float64(seg.Coding.K) - 1,
		Duration:       time.Since(start),
		PerServer:      received,
		FailedGets:     int(failed.Load()),
		UsedDecoder:    totalUsed,
		CorruptShares:  int(fx.corrupt.Load()),
		RejectedShares: rejected,
		Hedges:         int(fx.hedges.Load()),
		HedgeWins:      int(fx.hedgeWins.Load()),
	}
	if tr != nil {
		tr.Stagef("per-server", "blocks=%v failed-gets=%d corrupt=%d rejected=%d hedges=%d/%d",
			received, stats.FailedGets, stats.CorruptShares, stats.RejectedShares, stats.HedgeWins, stats.Hedges)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if !complete {
		return nil, stats, ErrUnrecoverable
	}
	// Concatenate the decoded chunks, truncating each to its own
	// payload length (the last block of every chunk is zero-padded).
	out := make([]byte, 0, seg.Size)
	for i, v := range views {
		blocks, derr := decs[i].Data()
		if derr != nil {
			return nil, stats, derr
		}
		var got int64
		for _, b := range blocks {
			need := v.size - got
			if need <= 0 {
				break
			}
			if need > int64(len(b)) {
				need = int64(len(b))
			}
			out = append(out, b[:need]...)
			got += need
		}
	}
	return out, stats, nil
}

// storeGetter is the read-path slice of blockstore.Store.
type storeGetter interface {
	Get(ctx context.Context, segment string, index int) ([]byte, error)
}

// stripeSlice deals element i of xs to worker i mod workers.
func stripeSlice(xs []int, worker, workers int) []int {
	var out []int
	for i := worker; i < len(xs); i += workers {
		out = append(out, xs[i])
	}
	return out
}

// ReadAt reconstructs length bytes starting at offset. LT codes are
// non-systematic — any read must decode the whole segment (§6.2: "only
// whole blocks can be applied to block-XOR operations") — so this is a
// convenience slice over a full speculative read, not a short-circuit;
// the stats reflect the full-segment access.
func (c *Client) ReadAt(ctx context.Context, name string, offset, length int64) ([]byte, ReadStats, error) {
	if offset < 0 || length < 0 {
		return nil, ReadStats{}, errOffset
	}
	data, stats, err := c.Read(ctx, name)
	if err != nil {
		return nil, stats, err
	}
	if offset > int64(len(data)) {
		return nil, stats, errOffset
	}
	end := offset + length
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return data[offset:end], stats, nil
}

var errOffset = fmt.Errorf("robust: read range out of bounds")

// Stat returns a segment's metadata record.
func (c *Client) Stat(name string) (SegmentInfo, error) {
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return SegmentInfo{}, err
	}
	info := SegmentInfo{
		Name:       seg.Name,
		Size:       seg.Size,
		K:          seg.Coding.K,
		N:          seg.Coding.N,
		BlockBytes: seg.Coding.BlockBytes,
		Version:    seg.Version,
		Servers:    make(map[string]int, len(seg.Placement)),
	}
	for addr, idx := range seg.Placement {
		info.Servers[addr] = len(idx)
	}
	return info, nil
}

// SegmentInfo is the public view of a stored segment.
type SegmentInfo struct {
	Name       string
	Size       int64
	K, N       int
	BlockBytes int64
	Version    int64
	Servers    map[string]int // address -> blocks held
}
