package robust

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
)

// capStore accepts a fixed number of Puts and fails the rest — a
// deterministic "server out of space" for provoking short and
// degraded writes.
type capStore struct {
	blockstore.Store
	remaining atomic.Int64
}

func newCapStore(capacity int) *capStore {
	s := &capStore{Store: blockstore.NewMemStore()}
	s.remaining.Store(int64(capacity))
	return s
}

var errFull = errors.New("capstore: full")

func (s *capStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	if s.remaining.Add(-1) < 0 {
		// Fail slowly: an instantly failing put lets the retry loop burn
		// the write's failure budget before the other stores' successful
		// (slower) puts commit, making the committed count racy.
		time.Sleep(time.Millisecond)
		return errFull
	}
	return s.Store.Put(ctx, segment, index, data)
}

// cappedClient builds a client over n capStores of the given per-store
// capacity. K=4 with the small test geometry, so N=16 and the default
// degraded floor is ceil(1.75·4)=7.
func cappedClient(t *testing.T, n, capacity int, opts Options) *Client {
	t.Helper()
	opts.BlockBytes = 1024
	meta := metadata.NewService()
	c, err := NewClient(meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("cap-%02d", i)
		if err := c.AttachStore(addr, newCapStore(capacity)); err != nil {
			t.Fatal(err)
		}
		meta.RegisterServer(metadata.Server{Addr: addr})
	}
	return c
}

// TestErrorTaxonomy provokes each failure mode of the robust client
// and asserts that the resulting error matches its documented sentinel
// via errors.Is — the contract callers dispatch on.
func TestErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	data := randData(4096, 1) // K=4 blocks of 1024

	tests := []struct {
		name    string
		provoke func(t *testing.T) error
		want    error
		notWant []error
	}{
		{
			name: "no servers",
			provoke: func(t *testing.T) error {
				c, err := NewClient(metadata.NewService(), Options{BlockBytes: 1024})
				if err != nil {
					t.Fatal(err)
				}
				_, err = c.Write(ctx, "seg", data, nil)
				return err
			},
			want: ErrNoServers,
		},
		{
			name: "segment exists",
			provoke: func(t *testing.T) error {
				c, _ := newTestClient(t, 4, Options{BlockBytes: 1024})
				if _, err := c.Write(ctx, "seg", data, nil); err != nil {
					t.Fatal(err)
				}
				_, err := c.Write(ctx, "seg", data, nil)
				return err
			},
			want: metadata.ErrSegmentExists,
		},
		{
			name: "segment not found",
			provoke: func(t *testing.T) error {
				c, _ := newTestClient(t, 4, Options{BlockBytes: 1024})
				_, _, err := c.Read(ctx, "missing")
				return err
			},
			want: metadata.ErrSegmentNotFound,
		},
		{
			name: "short write",
			provoke: func(t *testing.T) error {
				// Total capacity 3·2=6 < floor 7: nothing commits.
				c := cappedClient(t, 3, 2, Options{})
				_, err := c.Write(ctx, "seg", data, nil)
				return err
			},
			want:    ErrShortWrite,
			notWant: []error{ErrDegradedWrite},
		},
		{
			name: "short write despite DegradedWrites below floor",
			provoke: func(t *testing.T) error {
				c := cappedClient(t, 3, 2, Options{DegradedWrites: true})
				_, err := c.Write(ctx, "seg", data, nil)
				return err
			},
			want:    ErrShortWrite,
			notWant: []error{ErrDegradedWrite},
		},
		{
			name: "degraded write",
			provoke: func(t *testing.T) error {
				// Capacity 3·3=9: between the floor (7) and N (16).
				c := cappedClient(t, 3, 3, Options{DegradedWrites: true})
				stats, err := c.Write(ctx, "seg", data, nil)
				if !stats.Degraded {
					t.Errorf("stats.Degraded = false, want true")
				}
				return err
			},
			want:    ErrDegradedWrite,
			notWant: []error{ErrShortWrite},
		},
		{
			name: "unrecoverable read",
			provoke: func(t *testing.T) error {
				c, stores := newTestClient(t, 4, Options{BlockBytes: 1024})
				if _, err := c.Write(ctx, "seg", data, nil); err != nil {
					t.Fatal(err)
				}
				for _, s := range stores {
					s.Close() // every get now fails; nothing decodes
				}
				_, _, err := c.Read(ctx, "seg")
				return err
			},
			want: ErrUnrecoverable,
		},
		{
			name: "corrupt share: truncated envelope",
			provoke: func(t *testing.T) error {
				_, err := openShare([]byte{0x52, 0x53})
				return err
			},
			want: ErrCorruptShare,
		},
		{
			name: "corrupt share: missing magic",
			provoke: func(t *testing.T) error {
				_, err := openShare(make([]byte, 32))
				return err
			},
			want: ErrCorruptShare,
		},
		{
			name: "corrupt share: flipped payload bit",
			provoke: func(t *testing.T) error {
				framed := sealShare(randData(64, 2))
				framed[shareOverhead+5] ^= 0x10
				_, err := openShare(framed)
				return err
			},
			want: ErrCorruptShare,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.provoke(t)
			if err == nil {
				t.Fatalf("provoked no error, want %v", tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
			for _, nw := range tc.notWant {
				if errors.Is(err, nw) {
					t.Fatalf("errors.Is(%v, %v) = true, want false", err, nw)
				}
			}
		})
	}
}

// TestDegradedWriteReadable confirms a degraded commit is immediately
// readable: the floor is above the LT decode threshold by design.
func TestDegradedWriteReadable(t *testing.T) {
	ctx := context.Background()
	data := randData(4096, 3)
	c := cappedClient(t, 3, 3, Options{DegradedWrites: true})
	stats, err := c.Write(ctx, "seg", data, nil)
	if !errors.Is(err, ErrDegradedWrite) {
		t.Fatalf("Write error = %v, want ErrDegradedWrite", err)
	}
	if stats.Committed >= stats.N || stats.Committed < 7 {
		t.Fatalf("Committed = %d, want in [7, %d)", stats.Committed, stats.N)
	}
	seg, err := c.Meta().LookupSegment("seg")
	if err != nil {
		t.Fatal(err)
	}
	if !seg.Degraded {
		t.Error("segment not marked Degraded in metadata")
	}
	got, _, err := c.Read(ctx, "seg")
	if err != nil {
		t.Fatalf("Read after degraded write: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("degraded segment decoded to wrong data")
	}
}
