package robust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/blockstore"
)

func TestHealthOnIntactSegment(t *testing.T) {
	c, _ := newTestClient(t, 6, Options{BlockBytes: 4 << 10, MaxServerShare: 0.25})
	ctx := context.Background()
	data := randData(128<<10, 20)
	ws, err := c.Write(ctx, "h", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Health(ctx, "h")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Decodable {
		t.Fatal("fresh segment not decodable")
	}
	if rep.Missing != 0 || rep.Reachable != ws.Committed {
		t.Fatalf("health = %+v, committed %d", rep, ws.Committed)
	}
	if len(rep.DeadAddrs) != 0 {
		t.Fatalf("dead addrs on healthy cluster: %v", rep.DeadAddrs)
	}
}

func TestHealthAfterLoss(t *testing.T) {
	c, _ := newTestClient(t, 6, Options{BlockBytes: 4 << 10, MaxServerShare: 0.25})
	ctx := context.Background()
	data := randData(128<<10, 21)
	if _, err := c.Write(ctx, "h2", data, nil); err != nil {
		t.Fatal(err)
	}
	c.DetachStore("mem-00")
	rep, err := c.Health(ctx, "h2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing == 0 {
		t.Fatal("loss not detected")
	}
	if len(rep.DeadAddrs) != 1 || rep.DeadAddrs[0] != "mem-00" {
		t.Fatalf("dead addrs = %v", rep.DeadAddrs)
	}
	if !rep.Decodable {
		t.Fatal("segment should survive one server loss at D=3")
	}
}

func TestRepairRestoresRedundancy(t *testing.T) {
	c, stores := newTestClient(t, 6, Options{BlockBytes: 4 << 10, MaxServerShare: 0.25})
	ctx := context.Background()
	data := randData(128<<10, 22)
	ws, err := c.Write(ctx, "r", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = stores
	// Lose two servers.
	c.DetachStore("mem-00")
	c.DetachStore("mem-01")
	before, _ := c.Health(ctx, "r")
	if before.Missing == 0 {
		t.Fatal("test needs actual loss")
	}
	rst, err := c.Repair(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	if rst.Regenerated != before.Missing {
		t.Fatalf("regenerated %d, missing was %d", rst.Regenerated, before.Missing)
	}
	after, err := c.Health(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	if after.Missing != 0 || len(after.DeadAddrs) != 0 {
		t.Fatalf("post-repair health = %+v", after)
	}
	if after.Reachable < ws.N {
		t.Fatalf("post-repair reachable %d < N %d", after.Reachable, ws.N)
	}
	// Data still reads correctly, and a version bump happened.
	got, _, err := c.Read(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after repair")
	}
	info, _ := c.Stat("r")
	if info.Version != 2 {
		t.Fatalf("version = %d, want 2", info.Version)
	}
	// Now lose the *new* biggest holder and read again — the repaired
	// redundancy must carry it.
	biggest, max1 := "", -1
	for addr, n := range info.Servers {
		if n > max1 {
			biggest, max1 = addr, n
		}
	}
	c.DetachStore(biggest)
	got, _, err = c.Read(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after second loss")
	}
}

func TestRepairFailsWhenUnrecoverable(t *testing.T) {
	c, _ := newTestClient(t, 6, Options{
		BlockBytes: 4 << 10, Redundancy: 1, MaxServerShare: 0.2,
	})
	ctx := context.Background()
	data := randData(128<<10, 23)
	if _, err := c.Write(ctx, "gone", data, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.DetachStore(fmt.Sprintf("mem-%02d", i))
	}
	if _, err := c.Repair(ctx, "gone"); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("repair of unrecoverable segment = %v", err)
	}
}

func TestRepairAfterBlockCorruptionLoss(t *testing.T) {
	// Blocks deleted out from under the client (bit rot, operator
	// error) are detected by Health and restored by Repair.
	c, stores := newTestClient(t, 5, Options{BlockBytes: 4 << 10, MaxServerShare: 0.3})
	ctx := context.Background()
	data := randData(96<<10, 24)
	if _, err := c.Write(ctx, "rot", data, nil); err != nil {
		t.Fatal(err)
	}
	// Delete a few blocks directly from a store that actually holds
	// some (the instant in-memory servers make placement uneven).
	deleted := 0
	for _, s := range stores {
		idx, _ := s.List(ctx, "rot")
		if len(idx) < 2 {
			continue
		}
		for _, i := range idx[:len(idx)/2] {
			s.Delete(ctx, "rot", i)
			deleted++
		}
		break
	}
	if deleted == 0 {
		t.Fatal("no store held enough blocks to corrupt")
	}
	rep, _ := c.Health(ctx, "rot")
	if rep.Missing == 0 {
		t.Fatal("deleted blocks not detected")
	}
	if _, err := c.Repair(ctx, "rot"); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Health(ctx, "rot")
	if after.Missing != 0 {
		t.Fatalf("still missing %d after repair", after.Missing)
	}
	got, _, err := c.Read(ctx, "rot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after rot repair")
	}
}

func TestWriteShareCapBoundsWorstCaseLoss(t *testing.T) {
	// Regression: the per-server share cap must be a fraction of the
	// commit target N, not of the larger generation budget graphN.
	// Under -race-like skewed scheduling a few fast servers run to
	// their cap before the rest start, so a graphN-based cap let two
	// of six servers absorb ~60% of a MaxServerShare=0.25 segment and
	// their loss made the data unrecoverable.
	c, _ := newTestClient(t, 6, Options{BlockBytes: 4 << 10, MaxServerShare: 0.25})
	ctx := context.Background()
	data := randData(128<<10, 40)
	ws, err := c.Write(ctx, "cap", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	cap := (ws.N + 3) / 4 // ceil(0.25 * N)
	for addr, got := range ws.PerServer {
		if got > cap {
			t.Fatalf("server %s holds %d blocks, share cap is %d (N=%d)", addr, got, cap, ws.N)
		}
	}
	// Losing the two biggest holders must leave a decodable segment.
	type holder struct {
		addr string
		n    int
	}
	var holders []holder
	for addr, n := range ws.PerServer {
		holders = append(holders, holder{addr, n})
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i].n > holders[j].n })
	c.DetachStore(holders[0].addr)
	c.DetachStore(holders[1].addr)
	got, _, err := c.Read(ctx, "cap")
	if err != nil {
		t.Fatalf("read after losing two biggest holders (%d+%d of %d blocks): %v",
			holders[0].n, holders[1].n, ws.Committed, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after two-server loss")
	}
}

func TestRepairRoundsWithConcurrentReads(t *testing.T) {
	// Regression for the scheduling-dependent repair failure: hammer
	// the repair path through repeated loss/repair rounds while
	// concurrent readers keep the store and metadata paths busy, the
	// interleaving the race detector's scheduler provokes.
	c, _ := newTestClient(t, 6, Options{BlockBytes: 4 << 10, MaxServerShare: 0.25})
	ctx := context.Background()
	data := randData(128<<10, 41)
	if _, err := c.Write(ctx, "churn", data, nil); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	readErr := make(chan error, 1)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := c.Read(ctx, "churn")
				if err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
				if !bytes.Equal(got, data) {
					select {
					case readErr <- fmt.Errorf("concurrent read returned wrong data"):
					default:
					}
					return
				}
			}
		}()
	}

	for round := 0; round < 4; round++ {
		victim := fmt.Sprintf("mem-%02d", round%6)
		c.DetachStore(victim)
		if _, err := c.Repair(ctx, "churn"); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("repair round %d after losing %s: %v", round, victim, err)
		}
		// The victim rejoins empty, like a wiped replacement disk.
		if err := c.AttachStore(victim, blockstore.NewMemStore()); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("concurrent reader: %v", err)
	default:
	}

	got, _, err := c.Read(ctx, "churn")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after repair churn")
	}
}

func TestHealthMissingSegment(t *testing.T) {
	c, _ := newTestClient(t, 2, Options{})
	if _, err := c.Health(context.Background(), "ghost"); err == nil {
		t.Fatal("health of missing segment succeeded")
	}
	if _, err := c.Repair(context.Background(), "ghost"); err == nil {
		t.Fatal("repair of missing segment succeeded")
	}
}

// TestRepairPromotesDegradedSegment walks the graceful-degradation
// life cycle: a write that can only reach the degraded floor commits
// (marked Degraded), a later Repair — once capacity is back — tops the
// placement up to the full target N with fresh graph indices and
// clears the mark.
func TestRepairPromotesDegradedSegment(t *testing.T) {
	ctx := context.Background()
	data := randData(4096, 40) // K=4, N=16, floor=7
	c := cappedClient(t, 3, 3, Options{DegradedWrites: true})
	ws, err := c.Write(ctx, "deg", data, nil)
	if !errors.Is(err, ErrDegradedWrite) {
		t.Fatalf("Write error = %v, want ErrDegradedWrite", err)
	}
	if ws.Committed >= ws.N {
		t.Fatalf("Committed = %d, not a degraded commit", ws.Committed)
	}

	// Capacity returns (servers recovered / new disks attached).
	for _, addr := range c.Servers() {
		st, _ := c.store(addr)
		st.(*capStore).remaining.Store(1 << 20)
	}

	rs, err := c.Repair(ctx, "deg")
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !rs.Promoted {
		t.Fatal("RepairStats.Promoted = false, want true")
	}
	if rs.Regenerated < ws.N-ws.Committed {
		t.Fatalf("Regenerated = %d, need at least %d to reach N", rs.Regenerated, ws.N-ws.Committed)
	}

	seg, err := c.Meta().LookupSegment("deg")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Degraded {
		t.Fatal("segment still marked Degraded after promotion")
	}
	total := 0
	for _, indices := range seg.Placement {
		total += len(indices)
	}
	if total < ws.N {
		t.Fatalf("placement holds %d blocks after promotion, want >= N=%d", total, ws.N)
	}

	got, _, err := c.Read(ctx, "deg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("promoted segment decoded to wrong data")
	}

	// A second repair on the now-healthy segment is a no-op promotion.
	rs2, err := c.Repair(ctx, "deg")
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Promoted {
		t.Fatal("repair of a full segment reported a promotion")
	}
}
