package robust

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/ltcode"
	"repro/internal/placement"
)

// HealthReport describes a segment's redundancy state.
type HealthReport struct {
	Name      string
	K, N      int
	Reachable int      // blocks on currently attached servers
	Missing   int      // blocks whose holders are detached or that lost the block
	Decodable bool     // whether a read would currently succeed
	DeadAddrs []string // placement holders that are not attached
	CheckedAt time.Time
}

// Health audits a segment: which placed blocks are still reachable
// (holder attached and block present) and whether the survivors
// decode. It reads no payload data — only block listings.
func (c *Client) Health(ctx context.Context, name string) (HealthReport, error) {
	c.m.healthChecks.Inc()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return HealthReport{}, err
	}
	// One symbolic decoder per chunk: the segment is readable only if
	// every chunk's graph decodes from its reachable shares.
	views := segmentChunks(seg)
	decs := make([]*ltcode.Decoder, len(views))
	for i, v := range views {
		graph, gerr := c.cachedGraph(v.coding)
		if gerr != nil {
			return HealthReport{}, gerr
		}
		decs[i] = ltcode.NewSymbolicDecoder(graph)
	}
	rep := HealthReport{Name: name, K: seg.Coding.K, N: seg.Coding.N, CheckedAt: time.Now()}
	for addr, indices := range seg.Placement {
		if cerr := ctx.Err(); cerr != nil {
			return HealthReport{}, cerr
		}
		store, ok := c.store(addr)
		if !ok {
			rep.DeadAddrs = append(rep.DeadAddrs, addr)
			rep.Missing += len(indices)
			continue
		}
		present, err := store.List(ctx, name)
		if err != nil {
			rep.DeadAddrs = append(rep.DeadAddrs, addr)
			rep.Missing += len(indices)
			continue
		}
		have := make(map[int]bool, len(present))
		for _, i := range present {
			have[i] = true
		}
		for _, i := range indices {
			if have[i] {
				rep.Reachable++
				if ci, local, ok := chunkFor(views, seg.ChunkStride, i); ok {
					decs[ci].Add(local)
				}
			} else {
				rep.Missing++
			}
		}
	}
	sort.Strings(rep.DeadAddrs)
	rep.Decodable = true
	for _, dec := range decs {
		rep.Decodable = rep.Decodable && dec.Complete()
	}
	return rep, nil
}

// RepairStats reports one repair pass.
type RepairStats struct {
	Regenerated int // blocks created on healthy servers (re-placed + top-up)
	Pruned      int // placement entries dropped (dead holders)
	// Promoted reports that the segment was below its commit target N
	// (a degraded write, or attrition) and this pass topped it back up
	// to full redundancy, clearing the Degraded mark.
	Promoted bool
	Duration time.Duration
}

// Repair restores a segment's redundancy after server loss or block
// corruption: it reconstructs the data from the surviving blocks,
// regenerates the unreachable coded blocks (same graph indices), and
// re-places them on healthy attached servers, updating the placement.
// A segment holding fewer than N blocks — a degraded-mode commit, or
// cumulative attrition — is promoted back to full redundancy with
// fresh graph indices and its Degraded mark cleared. The segment must
// still be decodable; Repair fails with ErrUnrecoverable otherwise.
func (c *Client) Repair(ctx context.Context, name string) (stats RepairStats, err error) {
	start := time.Now()
	tr := c.obs.StartTrace("repair", name)
	defer func() {
		c.m.repairs.Inc()
		c.m.repairRegenerated.Add(int64(stats.Regenerated))
		c.m.repairPruned.Add(int64(stats.Pruned))
		if stats.Promoted {
			c.m.repairPromoted.Inc()
		}
		c.m.repairLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			c.m.repairErrors.Inc()
		}
		tr.End(err)
	}()
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return RepairStats{}, err
	}
	defer unlock()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return RepairStats{}, err
	}
	data, _, err := c.readLocked(ctx, name)
	if err != nil {
		return RepairStats{}, fmt.Errorf("robust: repair read: %w", err)
	}
	tr.Stage("reconstruct")
	// Per-chunk graphs and blocks: regeneration encodes a lost global
	// index against its own chunk's graph and payload slice.
	views := segmentChunks(seg)
	graphs := make([]*ltcode.Graph, len(views))
	chunkBlocks := make([][][]byte, len(views))
	for i, v := range views {
		graphs[i], err = c.cachedGraph(v.coding)
		if err != nil {
			return RepairStats{}, err
		}
		chunkBlocks[i] = splitBlocks(data[v.offset:v.offset+v.size], seg.Coding.BlockBytes)
	}

	// Determine which placed blocks are gone and which remain.
	newPlacement := make(map[string][]int)
	var lost []int
	for addr, indices := range seg.Placement {
		if cerr := ctx.Err(); cerr != nil {
			return stats, cerr
		}
		store, ok := c.store(addr)
		if !ok {
			lost = append(lost, indices...)
			stats.Pruned += len(indices)
			continue
		}
		present, err := store.List(ctx, name)
		if err != nil {
			lost = append(lost, indices...)
			stats.Pruned += len(indices)
			continue
		}
		have := make(map[int]bool, len(present))
		for _, i := range present {
			have[i] = true
		}
		for _, i := range indices {
			if have[i] {
				newPlacement[addr] = append(newPlacement[addr], i)
			} else {
				lost = append(lost, i)
				stats.Pruned++
			}
		}
	}
	sort.Ints(lost)
	if tr != nil {
		tr.Stagef("audit", "lost=%d pruned=%d", len(lost), stats.Pruned)
	}

	// Re-place lost blocks round-robin through the placement manager:
	// the target list is the degrade ladder's admitted tier (Draining
	// and Removed servers excluded, failure-detector-Down ones last),
	// zone-interleaved so regenerated shares restore failure-domain
	// diversity instead of piling onto whichever server sorts first.
	// Repairs re-seal with the segment's recorded share format so
	// readers keep verifying a uniform envelope.
	sel, err := c.placementSelect(placement.Policy{
		SpreadZones: true,
		Seed:        seg.Coding.GraphSeed,
	})
	if err != nil {
		return stats, ErrNoServers
	}
	healthy := sel.Servers
	hi := 0
	place := func(idx int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ci, local, ok := chunkFor(views, seg.ChunkStride, idx)
		if !ok {
			return fmt.Errorf("robust: repair: block %d outside every chunk graph", idx)
		}
		coded := graphs[ci].EncodeBlock(local, chunkBlocks[ci])
		if seg.Coding.ShareCRC {
			coded = sealShare(coded)
		}
		for attempts := 0; attempts < len(healthy); attempts++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			addr := healthy[hi%len(healthy)]
			hi++
			store, ok := c.store(addr)
			if !ok {
				continue
			}
			err := store.Put(ctx, name, idx, coded)
			c.reportOutcome(addr, err)
			if err != nil {
				continue
			}
			newPlacement[addr] = append(newPlacement[addr], idx)
			stats.Regenerated++
			return nil
		}
		return fmt.Errorf("robust: repair could not re-place block %d", idx)
	}
	for _, idx := range lost {
		if err := place(idx); err != nil {
			return stats, err
		}
	}

	// Promotion: a degraded commit (or cumulative attrition) leaves a
	// chunk holding fewer than its N blocks even after every originally
	// placed block is restored. Top up each short chunk with fresh,
	// unused indices from its own graph until its target holds again.
	totals := make([]int, len(views))
	used := make(map[int]bool)
	for _, indices := range newPlacement {
		for _, i := range indices {
			used[i] = true
			if ci, _, ok := chunkFor(views, seg.ChunkStride, i); ok {
				totals[ci]++
			}
		}
	}
	added := 0
	for ci, v := range views {
		if totals[ci] >= v.coding.N {
			continue
		}
		graphN := v.coding.GraphN
		if graphN < v.coding.N {
			graphN = v.coding.N
		}
		for local := 0; local < graphN && totals[ci] < v.coding.N; local++ {
			idx := v.base + local
			if used[idx] {
				continue
			}
			if err := place(idx); err != nil {
				return stats, err
			}
			totals[ci]++
			added++
		}
		if totals[ci] < v.coding.N {
			return stats, fmt.Errorf("robust: repair exhausted the coding graph at %d of %d blocks", totals[ci], v.coding.N)
		}
		stats.Promoted = true
	}
	if stats.Promoted && tr != nil {
		tr.Stagef("promote", "topped-up=%d", added)
	}
	if stats.Promoted || seg.Degraded {
		seg.Degraded = false
	}

	if tr != nil {
		tr.Stagef("re-place", "regenerated=%d promoted=%v", stats.Regenerated, stats.Promoted)
	}
	seg.Placement = newPlacement
	if err := c.meta.UpdateSegment(seg); err != nil {
		return stats, err
	}
	tr.Stage("metadata")
	stats.Duration = time.Since(start)
	return stats, nil
}
