package robust

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/ltcode"
	"repro/internal/placement"
)

// HealthReport describes a segment's redundancy state.
type HealthReport struct {
	Name      string
	K, N      int
	Reachable int      // blocks on currently attached servers
	Missing   int      // blocks whose holders are detached or that lost the block
	Decodable bool     // whether a read would currently succeed
	DeadAddrs []string // placement holders that are not attached
	CheckedAt time.Time
}

// Health audits a segment: which placed blocks are still reachable
// (holder attached and block present) and whether the survivors
// decode. It reads no payload data — only block listings.
func (c *Client) Health(ctx context.Context, name string) (HealthReport, error) {
	c.m.healthChecks.Inc()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return HealthReport{}, err
	}
	graph, err := c.cachedGraph(seg.Coding)
	if err != nil {
		return HealthReport{}, err
	}
	rep := HealthReport{Name: name, K: seg.Coding.K, N: seg.Coding.N, CheckedAt: time.Now()}
	dec := ltcode.NewSymbolicDecoder(graph)
	for addr, indices := range seg.Placement {
		if cerr := ctx.Err(); cerr != nil {
			return HealthReport{}, cerr
		}
		store, ok := c.store(addr)
		if !ok {
			rep.DeadAddrs = append(rep.DeadAddrs, addr)
			rep.Missing += len(indices)
			continue
		}
		present, err := store.List(ctx, name)
		if err != nil {
			rep.DeadAddrs = append(rep.DeadAddrs, addr)
			rep.Missing += len(indices)
			continue
		}
		have := make(map[int]bool, len(present))
		for _, i := range present {
			have[i] = true
		}
		for _, i := range indices {
			if have[i] {
				rep.Reachable++
				dec.Add(i)
			} else {
				rep.Missing++
			}
		}
	}
	sort.Strings(rep.DeadAddrs)
	rep.Decodable = dec.Complete()
	return rep, nil
}

// RepairStats reports one repair pass.
type RepairStats struct {
	Regenerated int // blocks created on healthy servers (re-placed + top-up)
	Pruned      int // placement entries dropped (dead holders)
	// Promoted reports that the segment was below its commit target N
	// (a degraded write, or attrition) and this pass topped it back up
	// to full redundancy, clearing the Degraded mark.
	Promoted bool
	Duration time.Duration
}

// Repair restores a segment's redundancy after server loss or block
// corruption: it reconstructs the data from the surviving blocks,
// regenerates the unreachable coded blocks (same graph indices), and
// re-places them on healthy attached servers, updating the placement.
// A segment holding fewer than N blocks — a degraded-mode commit, or
// cumulative attrition — is promoted back to full redundancy with
// fresh graph indices and its Degraded mark cleared. The segment must
// still be decodable; Repair fails with ErrUnrecoverable otherwise.
func (c *Client) Repair(ctx context.Context, name string) (stats RepairStats, err error) {
	start := time.Now()
	tr := c.obs.StartTrace("repair", name)
	defer func() {
		c.m.repairs.Inc()
		c.m.repairRegenerated.Add(int64(stats.Regenerated))
		c.m.repairPruned.Add(int64(stats.Pruned))
		if stats.Promoted {
			c.m.repairPromoted.Inc()
		}
		c.m.repairLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			c.m.repairErrors.Inc()
		}
		tr.End(err)
	}()
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return RepairStats{}, err
	}
	defer unlock()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return RepairStats{}, err
	}
	data, _, err := c.readLocked(ctx, name)
	if err != nil {
		return RepairStats{}, fmt.Errorf("robust: repair read: %w", err)
	}
	tr.Stage("reconstruct")
	graph, err := c.cachedGraph(seg.Coding)
	if err != nil {
		return RepairStats{}, err
	}
	blocks := splitBlocks(data, seg.Coding.BlockBytes)

	// Determine which placed blocks are gone and which remain.
	newPlacement := make(map[string][]int)
	var lost []int
	for addr, indices := range seg.Placement {
		if cerr := ctx.Err(); cerr != nil {
			return stats, cerr
		}
		store, ok := c.store(addr)
		if !ok {
			lost = append(lost, indices...)
			stats.Pruned += len(indices)
			continue
		}
		present, err := store.List(ctx, name)
		if err != nil {
			lost = append(lost, indices...)
			stats.Pruned += len(indices)
			continue
		}
		have := make(map[int]bool, len(present))
		for _, i := range present {
			have[i] = true
		}
		for _, i := range indices {
			if have[i] {
				newPlacement[addr] = append(newPlacement[addr], i)
			} else {
				lost = append(lost, i)
				stats.Pruned++
			}
		}
	}
	sort.Ints(lost)
	if tr != nil {
		tr.Stagef("audit", "lost=%d pruned=%d", len(lost), stats.Pruned)
	}

	// Re-place lost blocks round-robin through the placement manager:
	// the target list is the degrade ladder's admitted tier (Draining
	// and Removed servers excluded, failure-detector-Down ones last),
	// zone-interleaved so regenerated shares restore failure-domain
	// diversity instead of piling onto whichever server sorts first.
	// Repairs re-seal with the segment's recorded share format so
	// readers keep verifying a uniform envelope.
	sel, err := c.placementSelect(placement.Policy{
		SpreadZones: true,
		Seed:        seg.Coding.GraphSeed,
	})
	if err != nil {
		return stats, ErrNoServers
	}
	healthy := sel.Servers
	hi := 0
	place := func(idx int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		coded := graph.EncodeBlock(idx, blocks)
		if seg.Coding.ShareCRC {
			coded = sealShare(coded)
		}
		for attempts := 0; attempts < len(healthy); attempts++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			addr := healthy[hi%len(healthy)]
			hi++
			store, ok := c.store(addr)
			if !ok {
				continue
			}
			err := store.Put(ctx, name, idx, coded)
			c.reportOutcome(addr, err)
			if err != nil {
				continue
			}
			newPlacement[addr] = append(newPlacement[addr], idx)
			stats.Regenerated++
			return nil
		}
		return fmt.Errorf("robust: repair could not re-place block %d", idx)
	}
	for _, idx := range lost {
		if err := place(idx); err != nil {
			return stats, err
		}
	}

	// Promotion: a degraded commit (or cumulative attrition) leaves the
	// segment holding fewer than N blocks even after every originally
	// placed block is restored. Top up with fresh, unused graph indices
	// until the commit target holds again.
	total := 0
	used := make(map[int]bool)
	for _, indices := range newPlacement {
		total += len(indices)
		for _, i := range indices {
			used[i] = true
		}
	}
	if total < seg.Coding.N {
		graphN := seg.Coding.GraphN
		if graphN < seg.Coding.N {
			graphN = seg.Coding.N
		}
		added := 0
		for idx := 0; idx < graphN && total < seg.Coding.N; idx++ {
			if used[idx] {
				continue
			}
			if err := place(idx); err != nil {
				return stats, err
			}
			total++
			added++
		}
		if total < seg.Coding.N {
			return stats, fmt.Errorf("robust: repair exhausted the coding graph at %d of %d blocks", total, seg.Coding.N)
		}
		stats.Promoted = true
		if tr != nil {
			tr.Stagef("promote", "topped-up=%d", added)
		}
	}
	if stats.Promoted || seg.Degraded {
		seg.Degraded = false
	}

	if tr != nil {
		tr.Stagef("re-place", "regenerated=%d promoted=%v", stats.Regenerated, stats.Promoted)
	}
	seg.Placement = newPlacement
	if err := c.meta.UpdateSegment(seg); err != nil {
		return stats, err
	}
	tr.Stage("metadata")
	stats.Duration = time.Since(start)
	return stats, nil
}
