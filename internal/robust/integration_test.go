package robust

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/transport"
)

// TestFullStackIntegration runs the complete deployment in-process:
// a networked metadata server, TCP block servers with checksum
// framing, and the client — write, read, update, health, repair, all
// over real sockets.
func TestFullStackIntegration(t *testing.T) {
	// Metadata daemon.
	metaSvc := metadata.NewService()
	metaSrv := metadata.NewNetworkServer(metaSvc)
	metaLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go metaSrv.Serve(metaLn)
	t.Cleanup(func() { metaSrv.Close() })
	remoteMeta, err := metadata.DialRemote(metaLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remoteMeta.Close() })

	// Block servers (checksummed in-memory stores).
	var blockSrvs []*transport.Server
	var addrs []string
	for i := 0; i < 5; i++ {
		srv := transport.NewServer(blockstore.WithChecksums(blockstore.NewMemStore()), transport.ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		blockSrvs = append(blockSrvs, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	t.Cleanup(func() {
		for _, s := range blockSrvs {
			s.Close()
		}
	})

	// Client over the remote metadata.
	client, err := NewClient(remoteMeta, Options{BlockBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range addrs {
		store, err := transport.Dial(addr, transport.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		if err := client.AttachStore(addr, store); err != nil {
			t.Fatal(err)
		}
		remoteMeta.RegisterServer(metadata.Server{Addr: addr})
	}

	ctx := context.Background()
	data := randData(700<<10, 99)
	if _, err := client.Write(ctx, "full-stack", data, nil); err != nil {
		t.Fatal(err)
	}
	// The metadata lives on the daemon, not in the client.
	if _, err := metaSvc.LookupSegment("full-stack"); err != nil {
		t.Fatalf("segment not on the metadata daemon: %v", err)
	}

	got, _, err := client.Read(ctx, "full-stack")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch over full stack")
	}

	// Partial read.
	part, _, err := client.ReadAt(ctx, "full-stack", 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[1000:1500]) {
		t.Fatal("ReadAt mismatch")
	}
	if _, _, err := client.ReadAt(ctx, "full-stack", int64(len(data))+1, 1); err == nil {
		t.Fatal("out-of-range ReadAt accepted")
	}

	// Update through the stack.
	if err := client.Update(ctx, "full-stack", 2048, []byte("UPDATED-OVER-TCP")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = client.Read(ctx, "full-stack")
	if !bytes.Equal(got[2048:2064], []byte("UPDATED-OVER-TCP")) {
		t.Fatal("update not visible")
	}

	// Kill a block server; health notices, repair heals.
	blockSrvs[0].Close()
	client.DetachStore(addrs[0])
	rep, err := client.Health(ctx, "full-stack")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing == 0 {
		t.Log("note: dead server held no blocks for this segment")
	} else {
		if _, err := client.Repair(ctx, "full-stack"); err != nil {
			t.Fatal(err)
		}
		after, _ := client.Health(ctx, "full-stack")
		if after.Missing != 0 {
			t.Fatalf("repair left %d missing", after.Missing)
		}
	}
	got, _, err = client.Read(ctx, "full-stack")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want[2048:], []byte("UPDATED-OVER-TCP"))
	if !bytes.Equal(got, want) {
		t.Fatal("final data mismatch")
	}

	// Delete through the stack.
	if err := client.Delete(ctx, "full-stack"); err != nil {
		t.Fatal(err)
	}
	if names := remoteMeta.ListSegments(); len(names) != 0 {
		t.Fatalf("segments after delete: %v", names)
	}
}

// TestIntegrationChecksumCorruptionHealed corrupts blocks beneath the
// checksum layer and verifies the read path routes around them.
func TestIntegrationChecksumCorruptionHealed(t *testing.T) {
	meta := metadata.NewService()
	client, err := NewClient(meta, Options{BlockBytes: 8 << 10, Redundancy: 3})
	if err != nil {
		t.Fatal(err)
	}
	inners := make([]*blockstore.MemStore, 4)
	for i := range inners {
		inners[i] = blockstore.NewMemStore()
		client.AttachStore(fmt.Sprintf("s%d", i), blockstore.WithChecksums(inners[i]))
	}
	ctx := context.Background()
	data := randData(256<<10, 123)
	if _, err := client.Write(ctx, "rotting", data, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt a third of every store's blocks under the checksum layer.
	for _, inner := range inners {
		idx, _ := inner.List(ctx, "rotting")
		for i, blockIdx := range idx {
			if i%3 != 0 {
				continue
			}
			framed, _ := inner.Get(ctx, "rotting", blockIdx)
			bad := append([]byte(nil), framed...)
			bad[len(bad)/2] ^= 0xA5
			inner.Put(ctx, "rotting", blockIdx, bad)
		}
	}
	got, stats, err := client.Read(ctx, "rotting")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch despite checksummed redundancy")
	}
	if stats.FailedGets == 0 {
		t.Fatal("expected corrupted blocks to surface as failed gets")
	}
}
