package robust

import (
	"context"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blockstore"
	"repro/internal/ltcode"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/placement"
)

// streamPutter is the pipelined write fast path a backend may offer;
// transport.Client implements it with the mux PUTSTREAM op. The
// contract matches transport.Client.PutStream: a non-nil return means
// no entry was acknowledged (the caller retries them all another
// way), nil means every entry received exactly one acked call.
type streamPutter interface {
	PutStream(ctx context.Context, segment string, puts []blockstore.BatchPut, acked func(i int, err error)) error
}

// WriteFrom stores size bytes read from r as an erasure-coded
// segment, like Write, but pipelined: with ChunkBytes set the input
// is consumed in fixed-size chunks, and each chunk is LT-encoded and
// ratelessly spread while the reader is already filling the buffer
// for the next one — so encode, network send, and ingest overlap,
// the first block commits after one chunk of input, and peak client
// buffering is O(ChunkBytes), not O(size). A negative size reads r
// to EOF; otherwise exactly size bytes are consumed and a short read
// fails the write. With ChunkBytes unset the whole input is buffered
// and written as a single-graph segment.
//
// The write commits to metadata only after every chunk reaches its
// durability target; on failure all placed blocks are deleted
// (best-effort) so no partial chunks are orphaned.
func (c *Client) WriteFrom(ctx context.Context, name string, r io.Reader, size int64, servers []string) (WriteStats, error) {
	chunk := c.opts.ChunkBytes
	if chunk <= 0 {
		var data []byte
		if size >= 0 {
			data = make([]byte, size)
			if _, err := io.ReadFull(r, data); err != nil {
				return WriteStats{}, fmt.Errorf("robust: read input: %w", err)
			}
		} else {
			var err error
			data, err = io.ReadAll(r)
			if err != nil {
				return WriteStats{}, fmt.Errorf("robust: read input: %w", err)
			}
		}
		return c.Write(ctx, name, data, servers)
	}

	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	// Double buffer: the reader pump fills one chunk while
	// writeSegment encodes and spreads the other. writeSegment
	// recycles a buffer the moment the chunk's bytes are copied into
	// coding blocks, which is what lets ingest of chunk i+1 overlap
	// the encode and spread of chunk i.
	free := make(chan []byte, 2)
	free <- make([]byte, chunk)
	free <- make([]byte, chunk)
	type readChunk struct {
		data []byte
		err  error
	}
	out := make(chan readChunk)
	go func() {
		defer close(out)
		var read int64
		for {
			want := chunk
			if size >= 0 {
				if rem := size - read; rem < want {
					want = rem
				}
			}
			if want == 0 {
				return
			}
			var buf []byte
			select {
			case buf = <-free:
			case <-rctx.Done():
				return
			}
			n, rerr := io.ReadFull(r, buf[:want])
			read += int64(n)
			var cerr error
			switch {
			case rerr == nil:
			case rerr == io.EOF || rerr == io.ErrUnexpectedEOF:
				if size >= 0 {
					cerr = fmt.Errorf("robust: short input: %d of %d bytes", read, size)
				}
			default:
				cerr = fmt.Errorf("robust: read input: %w", rerr)
			}
			if n == 0 && cerr == nil {
				return // clean EOF on a chunk boundary
			}
			select {
			case out <- readChunk{data: buf[:n], err: cerr}:
			case <-rctx.Done():
				return
			}
			if cerr != nil || rerr != nil {
				return
			}
		}
	}()
	next := func() ([]byte, error) {
		rc, ok := <-out
		if !ok {
			return nil, io.EOF
		}
		if rc.err != nil {
			return nil, rc.err
		}
		return rc.data, nil
	}
	recycle := func(b []byte) {
		select {
		case free <- b[:cap(b)]:
		default:
		}
	}
	return c.writeSegment(ctx, name, size, next, recycle, servers)
}

// writeSegment is the write path shared by Write and WriteFrom: it
// consumes chunks from next (io.EOF ends the stream), encodes and
// ratelessly spreads each one, and commits the segment record once
// every chunk has reached its durability target. recycle, when
// non-nil, hands a chunk buffer back to the producer as soon as its
// bytes have been copied into coding blocks. size is the declared
// total (negative when unknown). On any failure every block placed so
// far is deleted best-effort before returning, so a failed write
// leaves neither metadata nor orphaned partial chunks.
func (c *Client) writeSegment(ctx context.Context, name string, size int64, next func() ([]byte, error), recycle func([]byte), servers []string) (stats WriteStats, err error) {
	start := time.Now()
	tr := c.obs.StartTrace("write", name)
	defer func() {
		c.m.writes.Inc()
		c.m.writeBlocks.Add(int64(stats.Committed))
		c.m.writeBytes.Add(stats.BytesSent)
		c.m.writeFailedPuts.Add(int64(stats.FailedPuts))
		c.m.writeLatency.Observe(time.Since(start).Seconds())
		if stats.FirstCommit > 0 {
			c.m.writeFirstCommit.Observe(stats.FirstCommit.Seconds())
		}
		if err != nil {
			c.m.writeErrors.Inc()
		}
		tr.End(err)
	}()
	if name == "" {
		return WriteStats{}, fmt.Errorf("robust: empty segment name")
	}
	if size == 0 {
		return WriteStats{}, fmt.Errorf("robust: empty data")
	}
	if servers == nil {
		servers = c.writableServers()
	}
	if len(servers) == 0 {
		return WriteStats{}, ErrNoServers
	}
	for _, addr := range servers {
		if _, ok := c.store(addr); !ok {
			return WriteStats{}, fmt.Errorf("robust: server %q not attached", addr)
		}
	}
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return WriteStats{}, err
	}
	defer unlock()
	if _, err := c.meta.LookupSegment(name); err == nil {
		return WriteStats{}, metadata.ErrSegmentExists
	}
	tr.Stage("lock")

	sealed := !c.opts.DisableShareChecksums
	chunkBytes := c.opts.ChunkBytes
	// A chunked layout uses one fixed index stride sized for a full
	// chunk, so a coded index maps to its chunk by division. The last
	// chunk may be shorter; its graph still fits its stride slot.
	var stride int
	if chunkBytes > 0 {
		kFull := int((chunkBytes + c.opts.BlockBytes - 1) / c.opts.BlockBytes)
		nFull := int(math.Ceil((1 + c.opts.Redundancy) * float64(kFull)))
		stride = nFull + c.opts.GraphSlack*len(servers)
	}

	var (
		chunks     []metadata.Chunk
		placed     = make(map[string][]int, len(servers))
		total      int64
		totK, totN int
		degraded   bool
		firstNanos atomic.Int64
		seed0      int64 // single-graph layout's seed and graph size
		graphN0    int
	)
	defer func() {
		stats.K, stats.N = totK, totN
		stats.Duration = time.Since(start)
		stats.PerServer = countPlacement(placed)
		stats.FirstCommit = time.Duration(firstNanos.Load())
		stats.Degraded = degraded
	}()
	onFirst := func(addr string) {
		d := int64(time.Since(start))
		if d < 1 {
			d = 1 // keep the CAS sentinel distinguishable on coarse clocks
		}
		if firstNanos.CompareAndSwap(0, d) {
			tr.StageDetail("first-commit", addr)
		}
	}
	cleanup := func() {
		if len(placed) == 0 {
			return
		}
		// The write failed and nothing reached metadata: scrub the
		// partial spread so no orphaned blocks outlive it. Detached
		// context — the write may be failing precisely because ctx is
		// canceled — and best-effort: the scrubber backstops leftovers.
		dctx, dcancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
		defer dcancel()
		for addr, indices := range placed {
			if dctx.Err() != nil {
				return
			}
			store, ok := c.store(addr)
			if !ok {
				continue
			}
			_ = deleteBlocks(dctx, store, name, indices)
		}
	}

	for ci := 0; ; ci++ {
		data, nerr := next()
		if nerr == io.EOF {
			break
		}
		if nerr != nil {
			cleanup()
			return stats, nerr
		}
		if len(data) == 0 {
			continue
		}
		if chunkBytes > 0 && int64(len(data)) > chunkBytes {
			cleanup()
			return stats, fmt.Errorf("robust: chunk %d exceeds chunk size %d", ci, chunkBytes)
		}
		blocks := splitBlocks(data, c.opts.BlockBytes)
		k := len(blocks)
		n := int(math.Ceil((1 + c.opts.Redundancy) * float64(k)))
		graphN := n + c.opts.GraphSlack*len(servers)
		var seed int64
		var base int
		if chunkBytes > 0 {
			// Per-chunk seeds derive from the chunk identity so every
			// chunk gets an independent graph, reproducible from the
			// metadata record alone.
			seed = graphSeed(name+"#"+strconv.Itoa(ci), int64(len(data)))
			base = ci * stride
		} else {
			seed = graphSeed(name, int64(len(data)))
			seed0, graphN0 = seed, graphN
		}
		total += int64(len(data))
		graph, gerr := c.cachedGraph(metadata.Coding{
			K: k, C: c.opts.LTC, Delta: c.opts.LTDelta, GraphSeed: seed, GraphN: graphN,
		})
		if gerr != nil {
			cleanup()
			return stats, gerr
		}
		if recycle != nil {
			recycle(data) // blocks hold a copy; let the reader refill it
		}
		if tr != nil {
			tr.Stagef("plan", "chunk=%d K=%d N=%d graphN=%d servers=%d", ci, k, n, graphN, len(servers))
		}
		res := c.spreadChunk(ctx, tr, name, servers, spreadPlan{
			base: base, n: n, graphN: graphN, blocks: blocks, graph: graph, sealed: sealed,
		}, onFirst)
		stats.Committed += res.committed
		stats.BytesSent += res.bytesSent
		stats.FailedPuts += res.failed
		for addr, idx := range res.placed {
			placed[addr] = append(placed[addr], idx...)
		}
		totK += k
		totN += n
		if cerr := ctx.Err(); cerr != nil {
			cleanup()
			return stats, cerr
		}
		if res.committed < n {
			// Graceful degradation (opt-in): commit what survived when
			// it still clears the degraded floor — comfortably above
			// the LT decode threshold — rather than discarding a
			// recoverable chunk because some servers were down. The
			// floor holds per chunk: each chunk must stay independently
			// decodable.
			if !c.opts.DegradedWrites || res.committed < floorInt(k, c.opts.DegradedFloor) {
				cleanup()
				return stats, fmt.Errorf("%w: %d of %d (%d puts failed)",
					ErrShortWrite, res.committed, n, res.failed)
			}
			degraded = true
		}
		if chunkBytes > 0 {
			chunks = append(chunks, metadata.Chunk{
				Size: int64(len(data)), K: k, N: n, GraphSeed: seed, GraphN: graphN,
			})
		}
	}
	if total == 0 {
		return stats, fmt.Errorf("robust: empty data")
	}
	if tr != nil {
		tr.Stagef("per-server", "blocks=%v failed-puts=%d", countPlacement(placed), stats.FailedPuts)
	}

	cod := metadata.Coding{
		Algorithm:  "lt",
		K:          totK,
		N:          totN,
		BlockBytes: c.opts.BlockBytes,
		C:          c.opts.LTC,
		Delta:      c.opts.LTDelta,
		ShareCRC:   sealed,
	}
	var chunkStride int
	if chunkBytes > 0 {
		cod.GraphSeed = chunks[0].GraphSeed
		cod.GraphN = stride*(len(chunks)-1) + chunks[len(chunks)-1].GraphN
		chunkStride = stride
	} else {
		cod.GraphSeed = seed0
		cod.GraphN = graphN0
	}
	seg := metadata.Segment{
		Name:        name,
		Size:        total,
		Coding:      cod,
		Placement:   placed,
		Degraded:    degraded,
		Chunks:      chunks,
		ChunkStride: chunkStride,
	}
	if cerr := c.meta.CreateSegment(seg); cerr != nil {
		cleanup()
		return stats, cerr
	}
	tr.Stage("metadata")
	if degraded {
		c.m.writeDegraded.Inc()
		tr.StageDetail("degraded-commit", fmt.Sprintf("%d/%d", stats.Committed, totN))
		return stats, fmt.Errorf("%w: %d of %d blocks (floor %d)",
			ErrDegradedWrite, stats.Committed, totN, floorInt(totK, c.opts.DegradedFloor))
	}
	return stats, nil
}

// spreadPlan is one chunk's coding work handed to the rateless engine.
type spreadPlan struct {
	base   int // first global coded index of this chunk
	n      int // commit target
	graphN int // local graph size; the cursor and caps run against it
	blocks [][]byte
	graph  *ltcode.Graph
	sealed bool
}

// spreadResult is what one chunk's spread produced.
type spreadResult struct {
	committed int
	bytesSent int64
	failed    int
	placed    map[string][]int // global indices per server
}

// spreadChunk runs the rateless speculative spread (§4.3.2) for one
// chunk. Fresh local block indices come from an atomic cursor; an
// index whose put fails goes to a shared retry queue so another
// (healthier) server picks it up, bounded by a global failure budget.
// Indices travel the wire and land in the placement as p.base+local.
// Backends offering the streaming fast path get whole runs shipped
// over one PUTSTREAM op with per-entry acks; others keep the batch or
// per-block pipelines.
func (c *Client) spreadChunk(ctx context.Context, tr *obs.Trace, name string, servers []string, p spreadPlan, onFirstCommit func(addr string)) spreadResult {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	n, graphN := p.n, p.graphN
	var (
		next      int64 = -1 // atomically incremented local block cursor
		committed int64
		inflight  int64 // indices claimed by workers, not yet resolved
		bytesSent int64
		failed    int64
		// Stage markers raced for by the rateless workers: the first
		// block landing on a server and the commit target being reached.
		firstCommit, targetReached atomic.Bool
	)
	failureBudget := int64(4*graphN + 64)
	retry := make(chan int, graphN)
	// takeIndices claims up to want local indices: queued retries
	// first, then a fresh run off the cursor, then it blocks until a
	// retry appears or the spread ends. An empty result means it's over.
	takeIndices := func(dst []int, want int) []int {
		dst = dst[:0]
	drain:
		for len(dst) < want {
			select {
			case i := <-retry:
				dst = append(dst, i)
			default:
				break drain
			}
		}
		if m := int64(want - len(dst)); m > 0 {
			end := atomic.AddInt64(&next, m)
			for i := end - m + 1; i <= end; i++ {
				if i < int64(graphN) {
					dst = append(dst, int(i))
				}
			}
		}
		if len(dst) > 0 {
			return dst
		}
		select {
		case i := <-retry:
			return append(dst, i)
		case <-wctx.Done():
			return dst
		}
	}
	// The share cap is a fraction of the commit target n, not of the
	// (larger) graph: capping against graphN lets a fast server absorb
	// share·graphN of the n committed blocks, which under adversarial
	// scheduling concentrates the segment on fewer holders than the
	// placement-diversity option promises and can make the loss of two
	// servers unrecoverable.
	perServerCap := int64(graphN)
	if c.opts.MaxServerShare > 0 {
		perServerCap = int64(math.Ceil(c.opts.MaxServerShare * float64(n)))
		if perServerCap < 1 {
			perServerCap = 1
		}
	}
	// The zone cap is the same reservation discipline one level up:
	// servers in the same failure domain share one atomic counter, so
	// no zone can absorb more than ceil(MaxZoneShare·n) of the
	// committed shares no matter how the speculative race lands.
	var (
		perZoneCap int64
		zoneCounts map[string]*int64
		zoneOf     map[string]string
	)
	if c.opts.MaxZoneShare > 0 {
		perZoneCap = int64(placement.ZoneCapShares(c.opts.MaxZoneShare, n))
		zoneOf = make(map[string]string, len(servers))
		for _, srv := range c.meta.Servers() {
			zoneOf[srv.Addr] = srv.Zone
		}
		zoneCounts = make(map[string]*int64)
		for _, addr := range servers {
			z := zoneOf[addr]
			if zoneCounts[z] == nil {
				zoneCounts[z] = new(int64)
			}
		}
	}
	placeMu := sync.Mutex{}
	placed := make(map[string][]int, len(servers))
	serverCount := make(map[string]*int64, len(servers))
	for _, addr := range servers {
		var zero int64
		serverCount[addr] = &zero
	}
	batchRun := c.opts.BatchBlocks
	if batchRun < 1 {
		batchRun = 1
	}
	bufLen := shareBufLen(c.opts.BlockBytes)
	var wg sync.WaitGroup
	for _, addr := range servers {
		store, _ := c.store(addr)
		count := serverCount[addr]
		var zcount *int64
		if zoneCounts != nil {
			zcount = zoneCounts[zoneOf[addr]]
		}
		for w := 0; w < c.opts.PerServerParallel; w++ {
			wg.Add(1)
			go func(addr string, store storePutter) {
				defer wg.Done()
				batcher, _ := store.(putBatcher)
				streamer, _ := store.(streamPutter)
				maxRun := batchRun
				if batcher == nil && streamer == nil {
					maxRun = 1 // no batch fast path: keep the per-block pipeline
				}
				indices := make([]int, 0, maxRun)
				puts := make([]blockstore.BatchPut, 0, maxRun)
				runErrs := make([]error, maxRun)
				// Share buffers are leased from the pool once per worker
				// lifetime and reused across runs — safe because
				// Store.Put must not retain data — so a warm pool is
				// touched a handful of times per write, not per block.
				bufs := make([]*[]byte, 0, maxRun)
				defer func() {
					for _, b := range bufs {
						putShareBuf(b)
					}
				}()
				// handle resolves one entry's outcome. It runs serially
				// within a run — PutStream delivers acks one at a time
				// and completes them before returning, the fallback
				// loops call it inline — so overBudget needs no atomics.
				var overBudget bool
				handle := func(j int, errj error) {
					if errj != nil {
						atomic.AddInt64(count, -1)
						if zcount != nil {
							atomic.AddInt64(zcount, -1)
						}
						if wctx.Err() != nil || overBudget {
							return
						}
						if atomic.AddInt64(&failed, 1) > failureBudget {
							overBudget = true
							return
						}
						retry <- puts[j].Index - p.base // hand it to a healthier worker
						return
					}
					atomic.AddInt64(&bytesSent, int64(len(puts[j].Data)))
					if !firstCommit.Swap(true) {
						onFirstCommit(addr)
					}
					placeMu.Lock()
					placed[addr] = append(placed[addr], puts[j].Index)
					placeMu.Unlock()
					if atomic.AddInt64(&committed, 1) >= int64(n) {
						if !targetReached.Swap(true) {
							tr.Stage("commit-target")
						}
						cancel() // enough blocks on disk: stop the rest
					}
				}
				for {
					if wctx.Err() != nil {
						return
					}
					// Size the run by the outstanding commit need, so a
					// batch never claims blocks nobody has to store: an
					// unbounded run would overshoot the target by whole
					// batches (the floor of 1 keeps each worker probing,
					// exactly like the per-block pipeline, in case an
					// in-flight put on another server fails).
					want := int(int64(n) - atomic.LoadInt64(&committed) - atomic.LoadInt64(&inflight))
					if want < 1 {
						want = 1
					}
					if want > maxRun {
						want = maxRun
					}
					// Reserve the run in this server's share before taking
					// indices: a plain load-then-put check lets two
					// pipeline workers race past the cap together.
					reserved := want
					if over := atomic.AddInt64(count, int64(want)) - perServerCap; over > 0 {
						if over >= int64(want) {
							atomic.AddInt64(count, -int64(want))
							return // this server has its share
						}
						atomic.AddInt64(count, -over)
						reserved -= int(over)
					}
					if zcount != nil {
						if over := atomic.AddInt64(zcount, int64(reserved)) - perZoneCap; over > 0 {
							if over >= int64(reserved) {
								atomic.AddInt64(zcount, -int64(reserved))
								atomic.AddInt64(count, -int64(reserved))
								return // this failure domain has its share
							}
							atomic.AddInt64(zcount, -over)
							atomic.AddInt64(count, -over)
							reserved -= int(over)
						}
					}
					indices = takeIndices(indices, reserved)
					if give := int64(reserved - len(indices)); give > 0 {
						atomic.AddInt64(count, -give)
						if zcount != nil {
							atomic.AddInt64(zcount, -give)
						}
					}
					if len(indices) == 0 {
						return // spread ended while waiting for work
					}
					atomic.AddInt64(&inflight, int64(len(indices)))
					// Encode the run into this worker's leased buffers.
					for len(bufs) < len(indices) {
						bufs = append(bufs, getShareBuf(bufLen))
					}
					puts = puts[:0]
					for bi, i := range indices {
						puts = append(puts, blockstore.BatchPut{
							Index: p.base + i,
							Data:  encodeShareInto(*bufs[bi], p.graph, i, p.blocks, p.sealed),
						})
					}
					overBudget = false
					// One health outcome per wire operation: the stream
					// and the batch are one round trip each, the fallback
					// loop stays one per put.
					streamed := false
					if streamer != nil && len(puts) > 1 {
						acked := func(j int, e error) {
							runErrs[j] = e
							handle(j, e)
						}
						if serr := streamer.PutStream(wctx, name, puts, acked); serr == nil {
							// Every entry was acked exactly once; runErrs
							// is fully populated for the health verdict.
							c.reportOutcome(addr, c.batchOutcome(runErrs[:len(puts)]))
							streamed = true
						}
						// A non-nil return guarantees zero acks were
						// delivered: fall back to the batch or per-block
						// path and re-send the whole run.
					}
					if !streamed {
						var errs []error
						if batcher != nil && len(puts) > 1 {
							errs = batcher.PutBatch(wctx, name, puts)
							c.reportOutcome(addr, c.batchOutcome(errs))
						} else {
							errs = runErrs[:len(puts)]
							for j := range puts {
								if cerr := wctx.Err(); cerr != nil {
									errs[j] = cerr // commit target reached or caller gone
									continue
								}
								errs[j] = store.Put(wctx, name, puts[j].Index, puts[j].Data)
								c.reportOutcome(addr, errs[j])
							}
						}
						for j := range puts {
							handle(j, errs[j])
						}
					}
					atomic.AddInt64(&inflight, -int64(len(puts)))
					if overBudget {
						cancel()
						return
					}
				}
			}(addr, store)
		}
	}
	wg.Wait()

	return spreadResult{
		committed: int(atomic.LoadInt64(&committed)),
		bytesSent: atomic.LoadInt64(&bytesSent),
		failed:    int(atomic.LoadInt64(&failed)),
		placed:    placed,
	}
}
