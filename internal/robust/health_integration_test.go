package robust

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/health"
	"repro/internal/metadata"
)

// The real detector must satisfy the client's tracker surface.
var _ HealthTracker = (*health.Tracker)(nil)

// fakeTracker is a scriptable HealthTracker recording the outcomes
// the client feeds it.
type fakeTracker struct {
	mu        sync.Mutex
	excluded  map[string]bool
	successes map[string]int
	failures  map[string]int
}

func newFakeTracker() *fakeTracker {
	return &fakeTracker{
		excluded:  map[string]bool{},
		successes: map[string]int{},
		failures:  map[string]int{},
	}
}

func (f *fakeTracker) ReportSuccess(addr string) {
	f.mu.Lock()
	f.successes[addr]++
	f.mu.Unlock()
}

func (f *fakeTracker) ReportFailure(addr string) {
	f.mu.Lock()
	f.failures[addr]++
	f.mu.Unlock()
}

func (f *fakeTracker) Excluded(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.excluded[addr]
}

func (f *fakeTracker) exclude(addr string, down bool) {
	f.mu.Lock()
	f.excluded[addr] = down
	f.mu.Unlock()
}

func (f *fakeTracker) counts(addr string) (succ, fail int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.successes[addr], f.failures[addr]
}

// newHealthClient builds a client over in-memory stores with the fake
// tracker plugged in. share, when positive, caps any server's block
// share to force multi-holder placement — instant in-memory stores
// otherwise let one server win the whole rateless race.
func newHealthClient(t *testing.T, tr HealthTracker, share float64, addrs ...string) *Client {
	t.Helper()
	c, err := NewClient(metadata.NewService(), Options{
		BlockBytes:     1 << 10,
		Health:         tr,
		MaxServerShare: share,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if err := c.AttachStore(a, blockstore.NewMemStore()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestHealthExcludedServerSkippedOnWrite verifies a Down server gets
// no blocks when the caller lets the client pick targets.
func TestHealthExcludedServerSkippedOnWrite(t *testing.T) {
	tr := newFakeTracker()
	c := newHealthClient(t, tr, 0, "s1", "s2", "s3")
	tr.exclude("s2", true)
	data := randData(8<<10, 1)
	stats, err := c.Write(context.Background(), "seg", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := stats.PerServer["s2"]; n != 0 {
		t.Fatalf("excluded server absorbed %d blocks", n)
	}
	// Rateless writes let whichever healthy server wins the race absorb
	// the blocks, so only the union is guaranteed.
	if stats.PerServer["s1"]+stats.PerServer["s3"] != stats.Committed {
		t.Fatalf("blocks leaked outside healthy servers: %v", stats.PerServer)
	}
	// Outcomes were reported for whichever servers served puts.
	s1, _ := tr.counts("s1")
	s3, _ := tr.counts("s3")
	if s1+s3 == 0 {
		t.Fatal("no success outcomes reported for healthy servers")
	}
}

// TestHealthAllExcludedFallsBack verifies total exclusion degrades to
// the full server set rather than ErrNoServers.
func TestHealthAllExcludedFallsBack(t *testing.T) {
	tr := newFakeTracker()
	c := newHealthClient(t, tr, 0, "s1", "s2")
	for _, a := range []string{"s1", "s2"} {
		tr.exclude(a, true)
	}
	data := randData(4<<10, 1)
	if _, err := c.Write(context.Background(), "seg", data, nil); err != nil {
		t.Fatalf("write with all servers excluded should fall back, got %v", err)
	}
	got, _, err := c.Read(context.Background(), "seg")
	if err != nil {
		t.Fatalf("read with all holders excluded should fall back, got %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
}

// TestHealthExcludedHolderSkippedOnRead verifies reads avoid Down
// holders and still decode from the rest, and that fetch outcomes
// feed the tracker.
func TestHealthExcludedHolderSkippedOnRead(t *testing.T) {
	tr := newFakeTracker()
	c := newHealthClient(t, tr, 0.4, "s1", "s2", "s3")
	data := randData(8<<10, 1)
	if _, err := c.Write(context.Background(), "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	tr.exclude("s1", true)
	got, stats, err := c.Read(context.Background(), "seg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	if n := stats.PerServer["s1"]; n != 0 {
		t.Fatalf("read pulled %d blocks from excluded holder", n)
	}
	if s, _ := tr.counts("s2"); s == 0 {
		t.Fatal("no fetch outcomes reported for s2")
	}
}

// TestHealthRepairAvoidsExcluded verifies repair re-places lost
// blocks away from Down servers.
func TestHealthRepairAvoidsExcluded(t *testing.T) {
	tr := newFakeTracker()
	// Four holders, each capped well below 1/3 of the commit target, so
	// losing one server and excluding another still leaves the two
	// survivors holding a decodable majority for the repair read.
	c := newHealthClient(t, tr, 0.28, "s1", "s2", "s3", "s4")
	data := randData(8<<10, 1)
	if _, err := c.Write(context.Background(), "seg", data, nil); err != nil {
		t.Fatal(err)
	}
	// Lose s1 entirely, and evict s2, so repair must rebuild onto the
	// survivors without touching s2.
	c.DetachStore("s1")
	tr.exclude("s2", true)
	before, err := c.Stat("seg")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Repair(context.Background(), "seg")
	if err != nil {
		t.Fatal(err)
	}
	after, err := c.Stat("seg")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Regenerated > 0 && after.Servers["s2"] > before.Servers["s2"] {
		t.Fatalf("repair placed new blocks on excluded server: before=%v after=%v",
			before.Servers, after.Servers)
	}
	if _, ok := after.Servers["s1"]; ok {
		t.Fatal("dead holder survived repair")
	}
}

// TestReportOutcomeClassification pins the liveness semantics: "not
// found" and corrupt shares are successes (the server answered),
// cancellation is no signal, anything else is a failure.
func TestReportOutcomeClassification(t *testing.T) {
	tr := newFakeTracker()
	c := newHealthClient(t, tr, 0, "s1")
	cases := []struct {
		err        error
		succ, fail int
	}{
		{nil, 1, 0},
		{blockstore.ErrNotFound, 1, 0},
		{ErrCorruptShare, 1, 0},
		{context.Canceled, 0, 0},
		{context.DeadlineExceeded, 0, 0},
		{errors.New("connection refused"), 0, 1},
	}
	for _, tc := range cases {
		before, beforeF := tr.counts("s1")
		c.reportOutcome("s1", tc.err)
		s, f := tr.counts("s1")
		if s-before != tc.succ || f-beforeF != tc.fail {
			t.Errorf("outcome(%v): Δsucc=%d Δfail=%d, want %d/%d",
				tc.err, s-before, f-beforeF, tc.succ, tc.fail)
		}
	}
}

// TestProbeUsesListFallback exercises Probe against a plain local
// store (no Pinger).
func TestProbeUsesListFallback(t *testing.T) {
	tr := newFakeTracker()
	c := newHealthClient(t, tr, 0, "s1")
	if err := c.Probe(context.Background(), "s1"); err != nil {
		t.Fatalf("probe of healthy local store: %v", err)
	}
	if err := c.Probe(context.Background(), "nope"); err == nil {
		t.Fatal("probe of unattached server should fail")
	}
}
