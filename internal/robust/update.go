package robust

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ltcode"
)

// Update overwrites [offset, offset+len(patch)) of a stored segment
// in place, using the coding-graph locality of the improved LT codes
// (§4.3.4): only the coded blocks whose neighbor sets intersect the
// modified original blocks are regenerated and re-put — with K=1024
// and uniform coverage that is ~0.5% of the stored data per modified
// block, not a full rewrite.
func (c *Client) Update(ctx context.Context, name string, offset int64, patch []byte) error {
	if len(patch) == 0 {
		return nil
	}
	if offset < 0 {
		return fmt.Errorf("robust: negative update offset")
	}
	unlock, err := c.meta.LockWrite(ctx, name)
	if err != nil {
		return err
	}
	defer unlock()
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return err
	}
	if offset+int64(len(patch)) > seg.Size {
		return fmt.Errorf("robust: update [%d,%d) exceeds segment size %d",
			offset, offset+int64(len(patch)), seg.Size)
	}

	// Read-modify-write: reconstruct, patch, re-encode the affected
	// coded blocks only.
	data, _, err := c.readLocked(ctx, name)
	if err != nil {
		return fmt.Errorf("robust: update read: %w", err)
	}
	copy(data[offset:], patch)

	// Per-chunk graphs and blocks: the patched byte range touches only
	// the chunks it overlaps, and each chunk's graph localizes the
	// affected coded blocks within that chunk's index stride.
	views := segmentChunks(seg)
	graphs := make([]*ltcode.Graph, len(views))
	chunkBlocks := make([][][]byte, len(views))
	affected := map[int]bool{}
	end := offset + int64(len(patch))
	for i, v := range views {
		graphs[i], err = c.cachedGraph(v.coding)
		if err != nil {
			return err
		}
		chunkBlocks[i] = splitBlocks(data[v.offset:v.offset+v.size], seg.Coding.BlockBytes)
		lo, hi := offset, end
		if lo < v.offset {
			lo = v.offset
		}
		if hi > v.offset+v.size {
			hi = v.offset + v.size
		}
		if lo >= hi {
			continue // patch does not touch this chunk
		}
		firstOrig := int((lo - v.offset) / seg.Coding.BlockBytes)
		lastOrig := int((hi - 1 - v.offset) / seg.Coding.BlockBytes)
		for o := firstOrig; o <= lastOrig; o++ {
			for _, ci := range graphs[i].AffectedCoded(o) {
				affected[v.base+ci] = true
			}
		}
	}

	// Which of the affected coded blocks are actually stored, and
	// where?
	holders := map[int][]string{}
	for addr, indices := range seg.Placement {
		for _, i := range indices {
			if affected[i] {
				holders[i] = append(holders[i], addr)
			}
		}
	}
	var order []int
	for i := range holders {
		order = append(order, i)
	}
	sort.Ints(order)

	for _, i := range order {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		ci, local, ok := chunkFor(views, seg.ChunkStride, i)
		if !ok {
			return fmt.Errorf("robust: update: block %d outside every chunk graph", i)
		}
		coded := graphs[ci].EncodeBlock(local, chunkBlocks[ci])
		if seg.Coding.ShareCRC {
			coded = sealShare(coded)
		}
		for _, addr := range holders[i] {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			store, ok := c.store(addr)
			if !ok {
				return fmt.Errorf("robust: update: holder %q of block %d unreachable", addr, i)
			}
			if err := store.Put(ctx, name, i, coded); err != nil {
				return fmt.Errorf("robust: update block %d on %s: %w", i, addr, err)
			}
		}
	}

	// Bump the metadata version so readers can detect staleness.
	return c.meta.UpdateSegment(seg)
}

// AffectedBlocks reports how many stored coded blocks an update to
// the given byte range would rewrite — the §4.3.4 update-cost
// estimate, exposed so applications can plan update batching.
func (c *Client) AffectedBlocks(name string, offset, length int64) (int, error) {
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return 0, err
	}
	if length <= 0 {
		return 0, nil
	}
	stored := map[int]bool{}
	for _, indices := range seg.Placement {
		for _, i := range indices {
			stored[i] = true
		}
	}
	affected := map[int]bool{}
	end := offset + length
	for _, v := range segmentChunks(seg) {
		lo, hi := offset, end
		if lo < v.offset {
			lo = v.offset
		}
		if hi > v.offset+v.size {
			hi = v.offset + v.size
		}
		if lo >= hi {
			continue
		}
		graph, err := c.cachedGraph(v.coding)
		if err != nil {
			return 0, err
		}
		firstOrig := int((lo - v.offset) / seg.Coding.BlockBytes)
		lastOrig := int((hi - 1 - v.offset) / seg.Coding.BlockBytes)
		for o := firstOrig; o <= lastOrig && o < v.coding.K; o++ {
			for _, ci := range graph.AffectedCoded(o) {
				if stored[v.base+ci] {
					affected[v.base+ci] = true
				}
			}
		}
	}
	return len(affected), nil
}
