package robust

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/transport"
)

// streamOptions is the small chunked geometry most tests here use:
// 2 KB blocks, 8 KB chunks -> K=4 per full chunk.
func streamOptions() Options {
	return Options{BlockBytes: 2 << 10, ChunkBytes: 8 << 10}
}

func TestWriteFromChunkedRoundTrip(t *testing.T) {
	c, _ := newTestClient(t, 6, streamOptions())
	ctx := context.Background()
	data := randData(50<<10+123, 9) // 6 full 8 KB chunks + a 2171-byte tail

	ws, err := c.WriteFrom(ctx, "stream", bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Committed < ws.N {
		t.Fatalf("committed %d < N %d", ws.Committed, ws.N)
	}
	if ws.FirstCommit <= 0 || ws.FirstCommit > ws.Duration {
		t.Fatalf("first-commit latency %v outside (0, %v]", ws.FirstCommit, ws.Duration)
	}

	seg, err := c.meta.LookupSegment("stream")
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Chunks) != 7 {
		t.Fatalf("chunks = %d, want 7", len(seg.Chunks))
	}
	if seg.ChunkStride <= 0 {
		t.Fatalf("chunk stride = %d, want > 0", seg.ChunkStride)
	}
	var sumSize int64
	var sumK, sumN int
	for _, ch := range seg.Chunks {
		sumSize += ch.Size
		sumK += ch.K
		sumN += ch.N
	}
	if sumSize != int64(len(data)) {
		t.Fatalf("chunk sizes sum to %d, want %d", sumSize, len(data))
	}
	if sumK != seg.Coding.K || sumN != seg.Coding.N {
		t.Fatalf("chunk K/N sums (%d/%d) != coding (%d/%d)", sumK, sumN, seg.Coding.K, seg.Coding.N)
	}

	got, rs, err := c.Read(ctx, "stream")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs from streamed input")
	}
	if rs.Received < rs.K {
		t.Fatalf("received %d < K %d", rs.Received, rs.K)
	}
}

func TestWriteFromUnknownSize(t *testing.T) {
	c, _ := newTestClient(t, 5, streamOptions())
	ctx := context.Background()

	// Unknown size (-1): the pump reads until EOF, including an input
	// that ends exactly on a chunk boundary (the empty-final-read case).
	for _, n := range []int{3 * (8 << 10), 20<<10 + 77} {
		data := randData(n, int64(n))
		name := "anon-" + string(rune('a'+n%26))
		ws, err := c.WriteFrom(ctx, name, bytes.NewReader(data), -1, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ws.Committed < ws.N {
			t.Fatalf("n=%d: committed %d < N %d", n, ws.Committed, ws.N)
		}
		seg, err := c.meta.LookupSegment(name)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Size != int64(n) {
			t.Fatalf("n=%d: recorded size %d", n, seg.Size)
		}
		got, _, err := c.Read(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: read data differs", n)
		}
	}
}

func TestWriteChunkedSlicePath(t *testing.T) {
	// Client.Write with ChunkBytes set runs the same chunked engine by
	// slicing the in-memory buffer; the stored layout must match the
	// streamed one and round-trip.
	c, _ := newTestClient(t, 5, streamOptions())
	ctx := context.Background()
	data := randData(30<<10, 4) // 3 full chunks + 6 KB tail

	if _, err := c.Write(ctx, "sliced", data, nil); err != nil {
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("sliced")
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Chunks) != 4 || seg.ChunkStride <= 0 {
		t.Fatalf("chunks=%d stride=%d, want 4 chunks with positive stride", len(seg.Chunks), seg.ChunkStride)
	}
	got, _, err := c.Read(ctx, "sliced")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs")
	}
}

func TestWriteLegacyLayoutUnchanged(t *testing.T) {
	// ChunkBytes=0 (the default) must keep the single-graph layout:
	// no chunk table, no stride, seed derived from the segment name.
	c, _ := newTestClient(t, 5, Options{BlockBytes: 2 << 10})
	ctx := context.Background()
	data := randData(20<<10, 2)

	if _, err := c.Write(ctx, "legacy", data, nil); err != nil {
		t.Fatal(err)
	}
	seg, err := c.meta.LookupSegment("legacy")
	if err != nil {
		t.Fatal(err)
	}
	if seg.Chunks != nil || seg.ChunkStride != 0 {
		t.Fatalf("legacy write produced chunked layout: chunks=%d stride=%d", len(seg.Chunks), seg.ChunkStride)
	}
	if seg.Coding.GraphSeed != graphSeed("legacy", int64(len(data))) {
		t.Fatalf("legacy graph seed changed: %d", seg.Coding.GraphSeed)
	}

	// WriteFrom without ChunkBytes falls back to buffering the reader
	// and producing the identical legacy layout.
	if _, err := c.WriteFrom(ctx, "legacy2", bytes.NewReader(data), int64(len(data)), nil); err != nil {
		t.Fatal(err)
	}
	seg2, err := c.meta.LookupSegment("legacy2")
	if err != nil {
		t.Fatal(err)
	}
	if seg2.Chunks != nil || seg2.ChunkStride != 0 {
		t.Fatal("WriteFrom fallback produced chunked layout")
	}
	got, _, err := c.Read(ctx, "legacy2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fallback read data differs")
	}
}

func TestWriteFromShortInput(t *testing.T) {
	c, stores := newTestClient(t, 4, streamOptions())
	ctx := context.Background()
	data := randData(12<<10, 3)

	// Declared 20 KB, reader delivers 12 KB: the write must fail, leave
	// no metadata, and delete the shares the first chunk already placed.
	_, err := c.WriteFrom(ctx, "short", bytes.NewReader(data), 20<<10, nil)
	if err == nil {
		t.Fatal("short input accepted")
	}
	if !strings.Contains(err.Error(), "short input") {
		t.Fatalf("error %q does not mention short input", err)
	}
	if _, lerr := c.meta.LookupSegment("short"); !errors.Is(lerr, metadata.ErrSegmentNotFound) {
		t.Fatalf("metadata survived a failed stream: %v", lerr)
	}
	for i, ms := range stores {
		if idx, _ := ms.List(ctx, "short"); len(idx) != 0 {
			t.Fatalf("store %d kept %d orphaned shares after failed stream", i, len(idx))
		}
	}
}

func TestWriteChunkedShortWriteCleansUp(t *testing.T) {
	// Four capped stores with room for the first chunk but not the
	// second: the write fails with ErrShortWrite and the first chunk's
	// already-committed shares are deleted, not orphaned.
	opts := streamOptions()
	opts.BlockBytes = 1024
	opts.ChunkBytes = 4096 // K=4, N=16 per chunk
	meta := metadata.NewService()
	c, err := NewClient(meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]*capStore, 4)
	for i := range caps {
		caps[i] = newCapStore(5)
		addr := []string{"cap-a", "cap-b", "cap-c", "cap-d"}[i]
		if err := c.AttachStore(addr, caps[i]); err != nil {
			t.Fatal(err)
		}
		meta.RegisterServer(metadata.Server{Addr: addr})
	}

	ctx := context.Background()
	data := randData(8192, 5) // two chunks; 20 total put slots < 32 needed
	_, werr := c.Write(ctx, "capped", data, nil)
	if !errors.Is(werr, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", werr)
	}
	if _, lerr := meta.LookupSegment("capped"); !errors.Is(lerr, metadata.ErrSegmentNotFound) {
		t.Fatalf("metadata survived a short chunked write: %v", lerr)
	}
	for i, cs := range caps {
		if idx, _ := cs.Store.List(ctx, "capped"); len(idx) != 0 {
			t.Fatalf("store %d kept %d shares from the committed chunk", i, len(idx))
		}
	}
}

func TestChunkedRepairHealthUpdate(t *testing.T) {
	c, stores := newTestClient(t, 5, streamOptions())
	ctx := context.Background()
	data := randData(28<<10, 6) // 3 full chunks + 4 KB tail

	if _, err := c.WriteFrom(ctx, "fixme", bytes.NewReader(data), int64(len(data)), nil); err != nil {
		t.Fatal(err)
	}

	// Lose one server's shares outright.
	victim := stores[0]
	idx, err := victim.List(ctx, "fixme")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) == 0 {
		t.Skip("victim store holds no shares; rateless race left it empty")
	}
	for _, i := range idx {
		if err := victim.Delete(ctx, "fixme", i); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := c.Health(ctx, "fixme")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing == 0 {
		t.Fatal("health saw no missing shares after wiping a store")
	}
	if !rep.Decodable {
		t.Fatal("segment undecodable with one lost store; geometry too tight")
	}

	if _, err := c.Repair(ctx, "fixme"); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Health(ctx, "fixme")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 0 {
		t.Fatalf("repair left %d shares missing", rep.Missing)
	}

	// Patch spanning the chunk 0/1 boundary, then verify both the
	// affected-block accounting and the read-back.
	patch := randData(4<<10, 7)
	off := int64(6 << 10) // last 2 KB of chunk 0 + first 2 KB of chunk 1
	affected, err := c.AffectedBlocks("fixme", off, int64(len(patch)))
	if err != nil {
		t.Fatal(err)
	}
	if affected <= 0 {
		t.Fatalf("affected blocks = %d for a cross-chunk patch", affected)
	}
	if err := c.Update(ctx, "fixme", off, patch); err != nil {
		t.Fatal(err)
	}
	copy(data[off:], patch)
	got, _, err := c.Read(ctx, "fixme")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after cross-chunk update differs")
	}
}

// slowStore delays every Put so a context cancellation lands while
// workers still hold leased share buffers.
type slowStore struct {
	blockstore.Store
	delay time.Duration
}

func (s *slowStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.Store.Put(ctx, segment, index, data)
}

func TestWriteShareBufLeaseBalance(t *testing.T) {
	ctx := context.Background()

	t.Run("success", func(t *testing.T) {
		before := shareBufLeases.Load()
		c, _ := newTestClient(t, 5, streamOptions())
		data := randData(24<<10, 8)
		if _, err := c.WriteFrom(ctx, "ok", bytes.NewReader(data), int64(len(data)), nil); err != nil {
			t.Fatal(err)
		}
		if got := shareBufLeases.Load(); got != before {
			t.Fatalf("leases drifted %d -> %d after a successful write", before, got)
		}
	})

	t.Run("short write", func(t *testing.T) {
		before := shareBufLeases.Load()
		opts := Options{BlockBytes: 1024, ChunkBytes: 4096}
		meta := metadata.NewService()
		c, err := NewClient(meta, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, addr := range []string{"lease-a", "lease-b", "lease-c"} {
			if err := c.AttachStore(addr, newCapStore(3)); err != nil {
				t.Fatal(err)
			}
			meta.RegisterServer(metadata.Server{Addr: addr})
		}
		if _, werr := c.Write(ctx, "starved", randData(8192, 9), nil); werr == nil {
			t.Fatal("capped write unexpectedly succeeded")
		}
		if got := shareBufLeases.Load(); got != before {
			t.Fatalf("leases drifted %d -> %d after a failed write", before, got)
		}
	})

	t.Run("canceled", func(t *testing.T) {
		before := shareBufLeases.Load()
		meta := metadata.NewService()
		c, err := NewClient(meta, streamOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, addr := range []string{"slow-a", "slow-b", "slow-c"} {
			st := &slowStore{Store: blockstore.NewMemStore(), delay: 5 * time.Millisecond}
			if err := c.AttachStore(addr, st); err != nil {
				t.Fatal(err)
			}
			meta.RegisterServer(metadata.Server{Addr: addr})
		}
		wctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() {
			_, werr := c.WriteFrom(wctx, "doomed", bytes.NewReader(randData(64<<10, 10)), 64<<10, nil)
			done <- werr
		}()
		time.Sleep(8 * time.Millisecond) // land mid-chunk
		cancel()
		if werr := <-done; werr == nil {
			// The write may have squeaked through on a fast machine;
			// either way the lease balance below is the real assertion.
			t.Log("canceled write completed before cancellation landed")
		}
		if got := shareBufLeases.Load(); got != before {
			t.Fatalf("leases drifted %d -> %d after a canceled write", before, got)
		}
	})
}

func TestStreamingWriteUsesPutStream(t *testing.T) {
	// End-to-end over real transport: a chunked WriteFrom against mux
	// servers must exercise the PUTSTREAM op (not per-op batches), and
	// the data must round-trip.
	reg := obs.NewRegistry()
	meta := metadata.NewService()
	opts := streamOptions()
	opts.BatchBlocks = 8
	c, err := NewClient(meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		srv := transport.NewServer(blockstore.NewMemStore(), transport.ServerOptions{Obs: reg})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		tc, err := transport.Dial(ln.Addr().String(), transport.ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tc.Close() })
		if err := c.AttachStore(ln.Addr().String(), tc); err != nil {
			t.Fatal(err)
		}
		meta.RegisterServer(metadata.Server{Addr: ln.Addr().String()})
	}

	ctx := context.Background()
	data := randData(64<<10, 11) // 8 chunks
	ws, err := c.WriteFrom(ctx, "wired", bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Committed < ws.N {
		t.Fatalf("committed %d < N %d", ws.Committed, ws.N)
	}
	got, _, err := c.Read(ctx, "wired")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read data differs over transport")
	}
	snap := reg.Snapshot()
	if snap.Counters["transport_server_put_stream_total"] == 0 {
		t.Fatal("no PUTSTREAM ops reached the servers; streaming path not taken")
	}
}
