package robust

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/transport"
)

// TestChaosStreamingWriteUnderFaults drives the pipelined streaming
// write through the paper's failure regime on real sockets: one
// server stalling half its puts, one resetting connections, one down
// for puts, and one killed outright mid-stream. The write must still
// commit every chunk, and the read-back must be intact — zero
// acked-write loss.
func TestChaosStreamingWriteUnderFaults(t *testing.T) {
	reg := obs.NewRegistry()
	client, servers := startChaosCluster(t, 8,
		Options{BlockBytes: 8 << 10, ChunkBytes: 64 << 10, MaxServerShare: 0.25, Obs: reg},
		transport.ClientOptions{MaxRetries: 3, Obs: reg})
	ctx := context.Background()
	data := randData(512<<10, 91) // 8 chunks, K=8 N=32 per chunk

	// The weather mid-write: a straggler, a flaky wire, a dead disk.
	servers[0].storeInj.SetConfig(faultinject.Config{StallProb: 0.5, Stall: 20 * time.Millisecond, Ops: []string{"put"}})
	servers[1].connInj.SetConfig(faultinject.Config{ResetProb: 0.1})
	// Failures carry a small latency so the healthy servers' puts land
	// before the failure budget burns out (the capStore reasoning).
	servers[2].storeInj.SetConfig(faultinject.Config{Latency: 2 * time.Millisecond, ErrProb: 1, Ops: []string{"put"}})
	// And one server dies for real, mid-chunk: connection refused for
	// every retry from then on.
	killer := time.AfterFunc(3*time.Millisecond, func() { servers[3].srv.Close() })
	defer killer.Stop()

	ws, err := client.WriteFrom(ctx, "storm", bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatalf("streaming write under faults: %v", err)
	}
	if ws.Committed < ws.N {
		t.Fatalf("committed %d < N %d", ws.Committed, ws.N)
	}

	// Calm the weather for the read so the assertion is about what the
	// write left behind, not read-path recovery.
	for _, cs := range servers[:3] {
		cs.storeInj.SetConfig(faultinject.Config{})
		cs.connInj.SetConfig(faultinject.Config{})
	}
	got, _, err := client.Read(ctx, "storm")
	if err != nil {
		t.Fatalf("read after chaotic stream: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("acked streaming write lost data")
	}
	seg, err := client.Meta().LookupSegment("storm")
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Chunks) != 8 {
		t.Fatalf("segment recorded %d chunks, want 8", len(seg.Chunks))
	}
	if ws.FailedPuts == 0 {
		t.Fatal("no puts failed: the faults never fired and the test proved nothing")
	}
	t.Logf("stream committed %d/%d blocks with %d re-routed puts, first commit %v",
		ws.Committed, ws.N, ws.FailedPuts, ws.FirstCommit)
}

// TestChaosStreamingWriteFailureLeavesNoOrphans: when the cluster
// cannot absorb the stream at all, the write must fail cleanly — no
// metadata, and no partial chunks left on the servers that did accept
// blocks before the failure verdict.
func TestChaosStreamingWriteFailureLeavesNoOrphans(t *testing.T) {
	client, servers := startChaosCluster(t, 4,
		Options{BlockBytes: 8 << 10, ChunkBytes: 64 << 10, MaxServerShare: 0.25},
		transport.ClientOptions{MaxRetries: 1})
	ctx := context.Background()
	data := randData(256<<10, 92)

	// Three of four servers refuse every put: the per-server cap makes
	// N unreachable, so the stream must fail.
	down := faultinject.Config{Latency: 2 * time.Millisecond, ErrProb: 1, Ops: []string{"put"}}
	for _, cs := range servers[1:] {
		cs.storeInj.SetConfig(down)
	}

	_, err := client.WriteFrom(ctx, "doomed", bytes.NewReader(data), int64(len(data)), nil)
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if _, lerr := client.Meta().LookupSegment("doomed"); !errors.Is(lerr, metadata.ErrSegmentNotFound) {
		t.Fatalf("metadata survived a failed stream: %v", lerr)
	}
	// The healthy server accepted blocks before the verdict; the
	// failure path must have deleted them.
	for _, cs := range servers {
		cs.storeInj.SetConfig(faultinject.Config{})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		orphans := 0
		for _, cs := range servers {
			if idx, _ := cs.mem.List(ctx, "doomed"); len(idx) > 0 {
				orphans += len(idx)
			}
		}
		if orphans == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d orphaned shares remain after failed stream", orphans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
