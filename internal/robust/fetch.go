package robust

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyTracker keeps a bounded reservoir of completed share-fetch
// latencies and estimates their p99, which is the hedge trigger
// delay: hedge only the requests that are slower than ~99% of their
// peers, so the extra load stays ~1% while the tail collapses.
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
}

const latencyTrackerCap = 256

func (t *latencyTracker) add(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) < latencyTrackerCap {
		t.samples = append(t.samples, d)
		return
	}
	t.samples[t.next] = d
	t.next = (t.next + 1) % latencyTrackerCap
	t.full = true
}

// p99 returns the 99th-percentile estimate, or 0 with no samples.
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	cp := append([]time.Duration(nil), t.samples...)
	t.mu.Unlock()
	if len(cp) == 0 {
		return 0
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := len(cp) * 99 / 100
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Hedge delay bounds: below 1ms a hedge is pure duplicated load;
// above 2s it no longer masks anything a human would call latency.
// Before any sample lands, 30ms is the prior.
const (
	hedgeDelayMin     = time.Millisecond
	hedgeDelayMax     = 2 * time.Second
	hedgeDelayInitial = 30 * time.Millisecond
)

// fetcher executes one read access's share fetches: CRC verification
// with reject-and-refetch, optional hedging, latency tracking, and
// the per-access recovery counters that end up in ReadStats.
type fetcher struct {
	c       *Client
	name    string
	sealed  bool
	hedge   bool
	delay   time.Duration // fixed hedge delay; 0 = adaptive
	tracker latencyTracker
	holders map[int][]string // index -> holder addresses (usually one)

	corrupt   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
}

func newFetcher(c *Client, name string, sealed bool, placement map[string][]int) *fetcher {
	f := &fetcher{
		c:      c,
		name:   name,
		sealed: sealed,
		hedge:  c.opts.HedgeReads,
		delay:  c.opts.HedgeDelay,
	}
	if f.hedge {
		f.holders = make(map[int][]string)
		for addr, indices := range placement {
			for _, i := range indices {
				f.holders[i] = append(f.holders[i], addr)
			}
		}
	}
	return f
}

// hedgeDelay returns the current trigger delay.
func (f *fetcher) hedgeDelay() time.Duration {
	if f.delay > 0 {
		return f.delay
	}
	d := f.tracker.p99()
	if d == 0 {
		return hedgeDelayInitial
	}
	if d < hedgeDelayMin {
		d = hedgeDelayMin
	}
	if d > hedgeDelayMax {
		d = hedgeDelayMax
	}
	return d
}

// getVerified performs one share fetch attempt with CRC verification
// and a single refetch on corruption: transit corruption is usually
// transient, disk corruption is not — one retry tells them apart
// without letting a rotten server stall the read.
func (f *fetcher) getVerified(ctx context.Context, addr string, store storeGetter, idx int) ([]byte, error) {
	start := time.Now()
	payload, err := store.Get(ctx, f.name, idx)
	f.c.reportOutcome(addr, err)
	if err != nil {
		return nil, err
	}
	f.tracker.add(time.Since(start))
	if !f.sealed {
		return payload, nil
	}
	data, err := openShare(payload)
	if err == nil {
		return data, nil
	}
	f.corrupt.Add(1)
	f.c.m.readCorruptShares.Inc()
	// Refetch once.
	payload, gerr := store.Get(ctx, f.name, idx)
	f.c.reportOutcome(addr, gerr)
	if gerr != nil {
		return nil, errors.Join(err, gerr)
	}
	data, err2 := openShare(payload)
	if err2 != nil {
		f.corrupt.Add(1)
		f.c.m.readCorruptShares.Inc()
		return nil, err2
	}
	return data, nil
}

// altStore picks a different, non-evicted holder of idx when the
// placement has one; otherwise the hedge goes back to the same store,
// where a fresh connection from the pool dodges per-connection
// stalls.
func (f *fetcher) altStore(primaryAddr string, idx int, primary storeGetter) (string, storeGetter) {
	for _, addr := range f.holders[idx] {
		if addr == primaryAddr || f.c.excluded(addr) {
			continue
		}
		if st, ok := f.c.store(addr); ok {
			return addr, st
		}
	}
	return primaryAddr, primary
}

// fetch retrieves one share, hedging the request once its latency
// crosses the p99-ish trigger: the hedge races the original, first
// answer wins, the loser is canceled and drained.
func (f *fetcher) fetch(ctx context.Context, addr string, store storeGetter, idx int) ([]byte, error) {
	if !f.hedge {
		return f.getVerified(ctx, addr, store, idx)
	}
	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	res := make(chan result, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		data, err := f.getVerified(pctx, addr, store, idx)
		res <- result{data, err, false}
	}()
	timer := time.NewTimer(f.hedgeDelay())
	defer timer.Stop()
	select {
	case r := <-res:
		return r.data, r.err
	case <-ctx.Done():
		pcancel()
		<-res // join the worker; Get returns promptly once canceled
		return nil, ctx.Err()
	case <-timer.C:
	}
	// Primary is slow: launch the hedge.
	f.hedges.Add(1)
	f.c.m.readHedges.Inc()
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	haddr, hstore := f.altStore(addr, idx, store)
	go func() {
		data, err := f.getVerified(sctx, haddr, hstore, idx)
		res <- result{data, err, true}
	}()
	first := <-res
	if first.err == nil {
		pcancel()
		scancel()
		<-res // drain the loser
		if first.hedged {
			f.hedgeWins.Add(1)
			f.c.m.readHedgeWins.Inc()
		} else {
			f.c.m.readHedgeLosses.Inc()
		}
		return first.data, nil
	}
	second := <-res
	if second.err == nil {
		if second.hedged {
			f.hedgeWins.Add(1)
			f.c.m.readHedgeWins.Inc()
		} else {
			f.c.m.readHedgeLosses.Inc()
		}
		return second.data, nil
	}
	// Both failed; prefer the more informative (non-cancellation)
	// error.
	if errors.Is(first.err, context.Canceled) {
		return nil, second.err
	}
	return nil, first.err
}
