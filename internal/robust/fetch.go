package robust

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metadata"
)

// latencyTracker keeps a bounded reservoir of completed share-fetch
// latencies and estimates their p99, which is the hedge trigger
// delay: hedge only the requests that are slower than ~99% of their
// peers, so the extra load stays ~1% while the tail collapses.
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
}

const latencyTrackerCap = 256

func (t *latencyTracker) add(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) < latencyTrackerCap {
		t.samples = append(t.samples, d)
		return
	}
	t.samples[t.next] = d
	t.next = (t.next + 1) % latencyTrackerCap
	t.full = true
}

// p99 returns the 99th-percentile estimate, or 0 with no samples.
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	cp := append([]time.Duration(nil), t.samples...)
	t.mu.Unlock()
	if len(cp) == 0 {
		return 0
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := len(cp) * 99 / 100
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Hedge delay bounds: below 1ms a hedge is pure duplicated load;
// above 2s it no longer masks anything a human would call latency.
// Before any sample lands, 30ms is the prior.
const (
	hedgeDelayMin     = time.Millisecond
	hedgeDelayMax     = 2 * time.Second
	hedgeDelayInitial = 30 * time.Millisecond
)

// fetcher executes one read access's share fetches: CRC verification
// with reject-and-refetch, optional hedging, latency tracking, and
// the per-access recovery counters that end up in ReadStats.
type fetcher struct {
	c       *Client
	name    string
	sealed  bool
	hedge   bool
	delay   time.Duration // fixed hedge delay; 0 = adaptive
	tracker latencyTracker
	holders map[int][]string // index -> holder addresses (usually one)

	corrupt   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	// Lifecycle states are loaded lazily on the first hedge: the
	// fault-free read path never pays the registry round trip.
	statesOnce sync.Once
	states     map[string]metadata.ServerState
}

func newFetcher(c *Client, name string, sealed bool, placement map[string][]int) *fetcher {
	f := &fetcher{
		c:      c,
		name:   name,
		sealed: sealed,
		hedge:  c.opts.HedgeReads,
		delay:  c.opts.HedgeDelay,
	}
	if f.hedge {
		f.holders = make(map[int][]string)
		for addr, indices := range placement {
			for _, i := range indices {
				f.holders[i] = append(f.holders[i], addr)
			}
		}
	}
	return f
}

// hedgeDelay returns the current trigger delay.
func (f *fetcher) hedgeDelay() time.Duration {
	if f.delay > 0 {
		return f.delay
	}
	d := f.tracker.p99()
	if d == 0 {
		return hedgeDelayInitial
	}
	if d < hedgeDelayMin {
		d = hedgeDelayMin
	}
	if d > hedgeDelayMax {
		d = hedgeDelayMax
	}
	return d
}

// getVerified performs one share fetch attempt with CRC verification
// and a single refetch on corruption: transit corruption is usually
// transient, disk corruption is not — one retry tells them apart
// without letting a rotten server stall the read.
func (f *fetcher) getVerified(ctx context.Context, addr string, store storeGetter, idx int) ([]byte, error) {
	start := time.Now()
	payload, err := store.Get(ctx, f.name, idx)
	f.c.reportOutcome(addr, err)
	if err != nil {
		return nil, err
	}
	f.tracker.add(time.Since(start))
	if !f.sealed {
		return payload, nil
	}
	data, err := openShare(payload)
	if err == nil {
		return data, nil
	}
	f.corrupt.Add(1)
	f.c.m.readCorruptShares.Inc()
	// Refetch once.
	payload, gerr := store.Get(ctx, f.name, idx)
	f.c.reportOutcome(addr, gerr)
	if gerr != nil {
		return nil, errors.Join(err, gerr)
	}
	data, err2 := openShare(payload)
	if err2 != nil {
		f.corrupt.Add(1)
		f.c.m.readCorruptShares.Inc()
		return nil, err2
	}
	return data, nil
}

// batchGetter is the batched read-path slice of blockstore.Batcher.
type batchGetter interface {
	GetBatch(ctx context.Context, segment string, indices []int) ([][]byte, []error)
}

// getBatchVerified fetches a window of shares in one round trip and
// verifies every entry's envelope, refetching corrupt entries once
// through the single-block op (transit corruption is usually
// transient, disk corruption is not). errs[i] is each entry's final
// outcome; datas[i] is nil whenever errs[i] is set.
func (f *fetcher) getBatchVerified(ctx context.Context, addr string, bg batchGetter, store storeGetter, indices []int) ([][]byte, []error) {
	start := time.Now()
	datas, errs := bg.GetBatch(ctx, f.name, indices)
	outcome := f.c.batchOutcome(errs)
	f.c.reportOutcome(addr, outcome)
	if outcome == nil {
		// The tracker learns batch round-trip times here, so the hedge
		// delay self-calibrates to window latency, not share latency.
		f.tracker.add(time.Since(start))
	}
	for i := range datas {
		if errs[i] != nil {
			datas[i] = nil
			continue
		}
		if !f.sealed {
			continue
		}
		data, err := openShare(datas[i])
		if err == nil {
			datas[i] = data
			continue
		}
		f.corrupt.Add(1)
		f.c.m.readCorruptShares.Inc()
		// Verification above is pure in-memory work and still counts
		// after cancellation (the drain path reads these stats); only
		// the refetch round trip is skipped once the read is done.
		if cerr := ctx.Err(); cerr != nil {
			datas[i], errs[i] = nil, errors.Join(err, cerr)
			continue
		}
		payload, gerr := store.Get(ctx, f.name, indices[i])
		f.c.reportOutcome(addr, gerr)
		if gerr != nil {
			datas[i], errs[i] = nil, errors.Join(err, gerr)
			continue
		}
		data, err2 := openShare(payload)
		if err2 != nil {
			f.corrupt.Add(1)
			f.c.m.readCorruptShares.Inc()
			datas[i], errs[i] = nil, err2
			continue
		}
		datas[i] = data
	}
	return datas, errs
}

// batchFrom fetches a window from a holder that may or may not offer
// the batch fast path (a hedge target can be an old server).
func (f *fetcher) batchFrom(ctx context.Context, addr string, store storeGetter, indices []int) ([][]byte, []error) {
	if bg, ok := store.(batchGetter); ok {
		return f.getBatchVerified(ctx, addr, bg, store, indices)
	}
	datas := make([][]byte, len(indices))
	errs := make([]error, len(indices))
	for i, idx := range indices {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		datas[i], errs[i] = f.getVerified(ctx, addr, store, idx)
	}
	return datas, errs
}

// deliverWindow hands a window's successful entries to deliver and
// returns the failure count — zero when the read was canceled, since
// a canceled fetch says nothing about the holder.
func deliverWindow(ctx context.Context, indices []int, datas [][]byte, errs []error, deliver func(int, []byte)) int {
	failed := 0
	for i := range indices {
		if errs[i] != nil {
			failed++
			continue
		}
		deliver(indices[i], datas[i])
	}
	if ctx.Err() != nil {
		return 0
	}
	return failed
}

// fetchBatch retrieves a window of shares from one holder, delivering
// each verified payload and returning how many shares failed. Stores
// without the batch fast path keep the per-share pipeline (including
// per-share hedging). Batch windows hedge at window granularity: when
// the primary batch outlives the p99-ish trigger the whole remaining
// window is promoted to the alternate holder, the first responder
// wins, and the loser fills any entries the winner missed.
func (f *fetcher) fetchBatch(ctx context.Context, addr string, store storeGetter, indices []int, deliver func(int, []byte)) int {
	bg, ok := store.(batchGetter)
	if !ok || len(indices) == 1 {
		failed := 0
		for _, idx := range indices {
			payload, err := f.fetch(ctx, addr, store, idx)
			if err != nil {
				if ctx.Err() != nil {
					return failed
				}
				failed++
				continue
			}
			deliver(idx, payload)
		}
		return failed
	}
	if !f.hedge {
		datas, errs := f.getBatchVerified(ctx, addr, bg, store, indices)
		return deliverWindow(ctx, indices, datas, errs, deliver)
	}
	type batchRes struct {
		datas  [][]byte
		errs   []error
		hedged bool
	}
	res := make(chan batchRes, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		datas, errs := f.getBatchVerified(pctx, addr, bg, store, indices)
		res <- batchRes{datas, errs, false}
	}()
	timer := time.NewTimer(f.hedgeDelay())
	defer timer.Stop()
	var (
		winner    batchRes
		gotWinner bool
		scancel   context.CancelFunc
	)
	select {
	case winner = <-res:
		gotWinner = true
	case <-ctx.Done():
	case <-timer.C:
	}
	outstanding := 1
	if gotWinner {
		outstanding--
	}
	if !gotWinner && ctx.Err() == nil {
		// Primary is slow: promote the whole remaining window.
		f.hedges.Add(1)
		f.c.m.readHedges.Inc()
		var sctx context.Context
		sctx, scancel = context.WithCancel(ctx)
		defer scancel()
		haddr, hstore := f.altStore(addr, indices[0], store)
		outstanding++
		go func() {
			datas, errs := f.batchFrom(sctx, haddr, hstore, indices)
			res <- batchRes{datas, errs, true}
		}()
		select {
		case winner = <-res:
			gotWinner = true
			outstanding--
		case <-ctx.Done():
		}
		if gotWinner {
			if winner.hedged {
				f.hedgeWins.Add(1)
				f.c.m.readHedgeWins.Inc()
			} else {
				f.c.m.readHedgeLosses.Inc()
			}
		}
	}
	if !gotWinner {
		// Canceled before any response: join the in-flight calls.
		pcancel()
		if scancel != nil {
			scancel()
		}
		for ; outstanding > 0; outstanding-- {
			<-res
		}
		return 0
	}
	if outstanding > 0 {
		anyFailed := false
		for _, e := range winner.errs {
			if e != nil {
				anyFailed = true
				break
			}
		}
		if anyFailed {
			// Let the loser fill the entries the winner missed.
			loser := <-res
			for i := range indices {
				if winner.errs[i] != nil && loser.errs[i] == nil {
					winner.datas[i], winner.errs[i] = loser.datas[i], nil
				}
			}
		} else {
			pcancel()
			scancel()
			<-res // drain the loser
		}
	}
	return deliverWindow(ctx, indices, winner.datas, winner.errs, deliver)
}

// serverStates returns the registry's lifecycle states, fetched once
// per access on first use (hedge decisions only — never the fault-free
// path).
func (f *fetcher) serverStates() map[string]metadata.ServerState {
	f.statesOnce.Do(func() {
		srvs := f.c.meta.Servers()
		f.states = make(map[string]metadata.ServerState, len(srvs))
		for _, s := range srvs {
			f.states[s.Addr] = s.State.Normalize()
		}
	})
	return f.states
}

// altStore picks a different, non-evicted holder of idx when the
// placement has one — preferring Active holders, since a Draining
// server is being evacuated and a Removed one is on its way out of
// the placement entirely; otherwise the hedge goes back to the same
// store, where a fresh connection from the pool dodges per-connection
// stalls.
func (f *fetcher) altStore(primaryAddr string, idx int, primary storeGetter) (string, storeGetter) {
	states := f.serverStates()
	var fallbackAddr string
	var fallback storeGetter
	for _, addr := range f.holders[idx] {
		if addr == primaryAddr || f.c.excluded(addr) {
			continue
		}
		st, ok := f.c.store(addr)
		if !ok {
			continue
		}
		if states[addr] == "" || states[addr] == metadata.ServerActive {
			return addr, st
		}
		if fallback == nil {
			fallbackAddr, fallback = addr, st
		}
	}
	if fallback != nil {
		return fallbackAddr, fallback
	}
	return primaryAddr, primary
}

// fetch retrieves one share, hedging the request once its latency
// crosses the p99-ish trigger: the hedge races the original, first
// answer wins, the loser is canceled and drained.
func (f *fetcher) fetch(ctx context.Context, addr string, store storeGetter, idx int) ([]byte, error) {
	if !f.hedge {
		return f.getVerified(ctx, addr, store, idx)
	}
	type result struct {
		data   []byte
		err    error
		hedged bool
	}
	res := make(chan result, 2)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		data, err := f.getVerified(pctx, addr, store, idx)
		res <- result{data, err, false}
	}()
	timer := time.NewTimer(f.hedgeDelay())
	defer timer.Stop()
	select {
	case r := <-res:
		return r.data, r.err
	case <-ctx.Done():
		pcancel()
		<-res // join the worker; Get returns promptly once canceled
		return nil, ctx.Err()
	case <-timer.C:
	}
	// Primary is slow: launch the hedge.
	f.hedges.Add(1)
	f.c.m.readHedges.Inc()
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	haddr, hstore := f.altStore(addr, idx, store)
	go func() {
		data, err := f.getVerified(sctx, haddr, hstore, idx)
		res <- result{data, err, true}
	}()
	first := <-res
	if first.err == nil {
		pcancel()
		scancel()
		<-res // drain the loser
		if first.hedged {
			f.hedgeWins.Add(1)
			f.c.m.readHedgeWins.Inc()
		} else {
			f.c.m.readHedgeLosses.Inc()
		}
		return first.data, nil
	}
	second := <-res
	if second.err == nil {
		if second.hedged {
			f.hedgeWins.Add(1)
			f.c.m.readHedgeWins.Inc()
		} else {
			f.c.m.readHedgeLosses.Inc()
		}
		return second.data, nil
	}
	// Both failed; prefer the more informative (non-cancellation)
	// error.
	if errors.Is(first.err, context.Canceled) {
		return nil, second.err
	}
	return nil, first.err
}
