package robust

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metadata"
	"repro/internal/placement"
)

// RebalanceStats reports one rebalance pass.
type RebalanceStats struct {
	Scanned   int   // segments planned
	Planned   int   // moves the planner produced
	Moved     int   // moves that committed
	Skipped   int   // moves stale by execution time (placement changed)
	Failed    int   // moves (or segment lookups) that errored
	Bytes     int64 // share bytes migrated
	Throttled time.Duration
}

// RebalanceOnce performs one rebalance pass: plan share migrations
// for every segment against the current candidates (see
// placement.PlanSegment — lifecycle evacuation first, then zone-cap
// restoration, then per-server convergence), then execute the queue
// under the daemon's token bucket. Each move is re-validated under
// the segment's write lock before any byte moves, so a plan staled by
// a concurrent write, repair, or competing rebalancer degrades to a
// skip, never to data loss.
func (d *Daemon) RebalanceOnce(ctx context.Context) (RebalanceStats, error) {
	var stats RebalanceStats
	d.m.rebalancePasses.Inc()
	tr := d.c.obs.StartTrace("rebalance-pass", "")
	var firstErr error
	defer func() { tr.End(firstErr) }()

	frac := d.opts.MaxZoneShare
	if frac == 0 {
		frac = d.c.opts.MaxZoneShare
	}
	cands := d.c.placementCandidates()
	var queue []placement.Move
	// Each move migrates one share of its segment's coded block size —
	// charge the bucket what actually crosses the wire, not the
	// client's configured write-path block size.
	shareBytes := map[string]int64{}
	for _, name := range d.c.meta.ListSegments() {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		seg, err := d.c.meta.LookupSegment(name)
		if err != nil {
			stats.Failed++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		stats.Scanned++
		shareBytes[name] = seg.Coding.BlockBytes
		queue = append(queue, placement.PlanSegment(name, seg.Placement, cands, placement.RebalancePolicy{
			MaxZoneShare: frac,
		})...)
	}
	stats.Planned = len(queue)
	d.m.rebalanceQueueDepth.Set(float64(len(queue)))
	if tr != nil {
		tr.Stagef("plan", "segments=%d moves=%d", stats.Scanned, len(queue))
	}

	for qi, mv := range queue {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		bytes := shareBytes[mv.Segment]
		if bytes <= 0 {
			bytes = d.c.opts.BlockBytes
		}
		// One share migrates per move; charge the bucket before
		// touching data so migration bandwidth and repair bandwidth
		// draw from the same budget.
		if wait := d.bucket.take(bytes); wait > 0 {
			stats.Throttled += wait
			d.m.rebalanceThrottle.Observe(wait.Seconds())
			if err := sleepCtx(ctx, wait); err != nil {
				return stats, err
			}
		}
		moved, err := d.executeMove(ctx, mv)
		switch {
		case err != nil:
			if cerr := ctx.Err(); cerr != nil {
				return stats, cerr
			}
			d.m.rebalanceMoveErrors.Inc()
			stats.Failed++
			if firstErr == nil {
				firstErr = err
			}
		case moved:
			d.m.rebalanceMoves.Inc()
			d.m.rebalanceBytes.Add(bytes)
			stats.Moved++
			stats.Bytes += bytes
		default:
			stats.Skipped++
		}
		d.m.rebalanceQueueDepth.Set(float64(len(queue) - qi - 1))
	}
	if tr != nil {
		tr.Stagef("migrate", "moved=%d skipped=%d failed=%d throttled=%s",
			stats.Moved, stats.Skipped, stats.Failed, stats.Throttled)
	}
	return stats, firstErr
}

// executeMove migrates one share. The copy lands on the target before
// the metadata flips and the source copy is deleted only after the
// updated placement commits, so at every instant the recorded
// placement points at a stored share — a crash anywhere in the
// sequence costs at most one orphan copy, never an acked write.
// Returns moved=false (no error) when the plan is stale: the source
// no longer holds the share, or the target already does.
func (d *Daemon) executeMove(ctx context.Context, mv placement.Move) (bool, error) {
	unlock, err := d.c.meta.LockWrite(ctx, mv.Segment)
	if err != nil {
		return false, err
	}
	defer unlock()
	seg, err := d.c.meta.LookupSegment(mv.Segment)
	if err != nil {
		return false, err
	}
	if !containsIndex(seg.Placement[mv.From], mv.Index) || containsIndex(seg.Placement[mv.To], mv.Index) {
		return false, nil // plan staled by a concurrent write/repair
	}
	src, ok := d.c.store(mv.From)
	if !ok {
		return false, fmt.Errorf("robust: rebalance source %q not attached", mv.From)
	}
	dst, ok := d.c.store(mv.To)
	if !ok {
		return false, fmt.Errorf("robust: rebalance target %q not attached", mv.To)
	}
	// The share moves verbatim — CRC envelope and all — so the copy
	// needs no re-encode and readers verify the same bytes.
	payload, err := src.Get(ctx, mv.Segment, mv.Index)
	d.c.reportOutcome(mv.From, err)
	if err != nil {
		return false, fmt.Errorf("robust: rebalance read %s[%d] from %s: %w", mv.Segment, mv.Index, mv.From, err)
	}
	err = dst.Put(ctx, mv.Segment, mv.Index, payload)
	d.c.reportOutcome(mv.To, err)
	if err != nil {
		return false, fmt.Errorf("robust: rebalance write %s[%d] to %s: %w", mv.Segment, mv.Index, mv.To, err)
	}
	seg.Placement[mv.From] = removeIndex(seg.Placement[mv.From], mv.Index)
	if len(seg.Placement[mv.From]) == 0 {
		delete(seg.Placement, mv.From)
	}
	seg.Placement[mv.To] = append(seg.Placement[mv.To], mv.Index)
	if err := d.c.meta.UpdateSegment(seg); err != nil {
		return false, err
	}
	// The source copy is now unreferenced; deleting it is cleanup, not
	// correctness — a failure leaves an orphan share, nothing more.
	if err := src.Delete(ctx, mv.Segment, mv.Index); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return true, cerr
		}
	}
	return true, nil
}

// DrainStatus reports how far a server's evacuation has progressed.
type DrainStatus struct {
	Addr   string
	State  metadata.ServerState
	Shares int // shares the placement still pins to this server
}

// DrainProgress reports the lifecycle state and remaining share count
// for addr: a drain is complete when State is Draining (or Removed)
// and Shares is zero.
func (c *Client) DrainProgress(addr string) (DrainStatus, error) {
	st := DrainStatus{Addr: addr, State: metadata.ServerActive}
	for _, srv := range c.meta.Servers() {
		if srv.Addr == addr {
			st.State = srv.State.Normalize()
		}
	}
	for _, name := range c.meta.ListSegments() {
		seg, err := c.meta.LookupSegment(name)
		if err != nil {
			return st, err
		}
		st.Shares += len(seg.Placement[addr])
	}
	return st, nil
}

// containsIndex reports whether idxs contains idx.
func containsIndex(idxs []int, idx int) bool {
	for _, i := range idxs {
		if i == idx {
			return true
		}
	}
	return false
}

// removeIndex returns idxs without idx (first occurrence).
func removeIndex(idxs []int, idx int) []int {
	for i, v := range idxs {
		if v == idx {
			return append(idxs[:i], idxs[i+1:]...)
		}
	}
	return idxs
}
