package robust

import (
	"context"
	"errors"
	"sync"
	"time"
)

// streamGetter is the stream-fed read-path fast path: fetch many
// blocks concurrently over one multiplexed connection, delivering
// each the moment its frames complete — out of order, which is
// exactly what the peeling decoder wants. transport.Client implements
// it over mux streams; deliver may be called from multiple
// goroutines. An implementation that cannot stream right now (legacy
// peer, upgrade refused) returns an error without delivering
// anything, and the fetcher falls back to batch windows.
type streamGetter interface {
	GetStream(ctx context.Context, segment string, indices []int, deliver func(index int, data []byte, err error)) error
}

// fetchWindow retrieves one window of shares from a holder, streaming
// them into the decoder as they arrive when the holder supports it
// and falling back to the batch (or single-op) pipeline when not.
func (f *fetcher) fetchWindow(ctx context.Context, addr string, store storeGetter, indices []int, deliver func(int, []byte)) int {
	if sg, ok := store.(streamGetter); ok && len(indices) > 1 {
		if failed, streamed := f.fetchStream(ctx, addr, sg, store, indices, deliver); streamed {
			return failed
		}
	}
	return f.fetchBatch(ctx, addr, store, indices, deliver)
}

// fetchStream is the stream-fed window fetch: every index rides its
// own mux stream, each verified share is delivered the moment its
// response completes (no batch-window barrier between the wire and
// the decoder), and the usual hedge promotion covers whatever is
// still outstanding when the p99-ish trigger fires. Returns
// streamed=false — nothing delivered, caller must fall back — when
// the holder cannot stream.
func (f *fetcher) fetchStream(ctx context.Context, addr string, sg streamGetter, store storeGetter, indices []int, deliver func(int, []byte)) (int, bool) {
	start := time.Now()
	var (
		mu        sync.Mutex
		done      = make(map[int]bool, len(indices))
		errByIdx  = make(map[int]error, len(indices))
		delivered = false
	)
	// handle verifies and hands over one share; duplicates (a hedge
	// winner racing a late stream) are dropped here so downstream
	// accounting stays exact even though the decoder would also
	// tolerate them.
	handle := func(idx int, payload []byte, err error) {
		if err == nil && f.sealed {
			var data []byte
			data, err = openShare(payload)
			if err != nil {
				f.corrupt.Add(1)
				f.c.m.readCorruptShares.Inc()
				// Refetch once through the single-op path: transit
				// corruption is usually transient, disk corruption is not.
				if cerr := ctx.Err(); cerr != nil {
					err = errors.Join(err, cerr)
				} else if payload2, gerr := store.Get(ctx, f.name, idx); gerr != nil {
					err = errors.Join(err, gerr)
				} else if data2, oerr := openShare(payload2); oerr != nil {
					f.corrupt.Add(1)
					f.c.m.readCorruptShares.Inc()
					err = oerr
				} else {
					data, err = data2, nil
				}
			}
			payload = data
		}
		mu.Lock()
		if done[idx] {
			mu.Unlock()
			return
		}
		if err != nil {
			errByIdx[idx] = err
			mu.Unlock()
			return
		}
		done[idx] = true
		delete(errByIdx, idx)
		delivered = true
		mu.Unlock()
		deliver(idx, payload)
	}

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primaryDone := make(chan error, 1)
	go func() { primaryDone <- sg.GetStream(pctx, f.name, indices, handle) }()

	var timerC <-chan time.Time
	if f.hedge {
		timer := time.NewTimer(f.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}
	var perr error
	gotPrimary := false
	select {
	case perr = <-primaryDone:
		gotPrimary = true
	case <-ctx.Done():
	case <-timerC:
		// Primary is slow: promote whatever is still outstanding to an
		// alternate holder (or a fresh path to the same one) as one
		// batch window, exactly like fetchBatch's promotion.
		mu.Lock()
		remaining := make([]int, 0, len(indices))
		for _, idx := range indices {
			if !done[idx] {
				remaining = append(remaining, idx)
			}
		}
		mu.Unlock()
		if len(remaining) > 0 && ctx.Err() == nil {
			f.hedges.Add(1)
			f.c.m.readHedges.Inc()
			haddr, hstore := f.altStore(addr, remaining[0], store)
			datas, herrs := f.batchFrom(ctx, haddr, hstore, remaining)
			hedgeWon := false
			for i, idx := range remaining {
				if herrs[i] != nil {
					continue
				}
				mu.Lock()
				if done[idx] {
					mu.Unlock()
					continue
				}
				done[idx] = true
				delete(errByIdx, idx)
				delivered = true
				mu.Unlock()
				deliver(idx, datas[i])
				hedgeWon = true
			}
			if hedgeWon {
				f.hedgeWins.Add(1)
				f.c.m.readHedgeWins.Inc()
			} else {
				f.c.m.readHedgeLosses.Inc()
			}
			mu.Lock()
			allDone := true
			for _, idx := range indices {
				if !done[idx] {
					allDone = false
					break
				}
			}
			mu.Unlock()
			if allDone {
				pcancel() // the stragglers are covered; stop their streams
			}
		}
	}
	if !gotPrimary {
		if ctx.Err() != nil {
			pcancel()
		}
		perr = <-primaryDone
	}

	mu.Lock()
	failed := 0
	for _, idx := range indices {
		if !done[idx] {
			failed++
		}
	}
	streamedNothing := !delivered
	mu.Unlock()
	if perr != nil && streamedNothing && ctx.Err() == nil {
		// The holder cannot stream (legacy server, mux unavailable):
		// nothing was delivered, so the caller retries the window over
		// the batch path with full accounting there.
		return 0, false
	}
	// One aggregated health outcome per window, mirroring the batch
	// path: cancellations are no signal about the holder.
	errs := make([]error, 0, len(indices))
	mu.Lock()
	for _, idx := range indices {
		if e, ok := errByIdx[idx]; ok {
			errs = append(errs, e)
		} else if !done[idx] {
			errs = append(errs, errors.New("robust: share not delivered"))
		} else {
			errs = append(errs, nil)
		}
	}
	mu.Unlock()
	f.c.reportOutcome(addr, f.c.batchOutcome(errs))
	if failed == 0 && ctx.Err() == nil {
		// The tracker learns whole-window stream times, keeping the
		// hedge delay calibrated the same way the batch path does.
		f.tracker.add(time.Since(start))
	}
	if ctx.Err() != nil {
		return 0, true
	}
	return failed, true
}
