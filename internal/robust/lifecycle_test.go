package robust

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/placement"
)

// newLifecycleClient builds a client over in-memory stores with every
// server registered (optionally zoned), returning the metadata
// service so tests can flip lifecycle states.
func newLifecycleClient(t *testing.T, opts Options, zones map[string]string, addrs ...string) (*Client, *metadata.Service) {
	t.Helper()
	meta := metadata.NewService()
	c, err := NewClient(meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if err := c.AttachStore(a, blockstore.NewMemStore()); err != nil {
			t.Fatal(err)
		}
		if err := meta.RegisterServer(metadata.Server{Addr: a, Zone: zones[a]}); err != nil {
			t.Fatal(err)
		}
	}
	return c, meta
}

// TestSelectServersFallbackLadder is the regression for the flat
// selector's failure mode: health exclusion used to be able to empty
// the candidate set. The ladder must degrade deterministically —
// Draining before Down, Down-excluded servers re-admitted last — and
// only an all-Removed registry yields ErrNoServers.
func TestSelectServersFallbackLadder(t *testing.T) {
	reg := obs.NewRegistry()
	tracker := newFakeTracker()
	c, meta := newLifecycleClient(t, Options{Health: tracker, Obs: reg}, nil, "s1", "s2", "s3")

	// Healthy cluster: all three are eligible, no fallback recorded.
	sel, err := c.SelectServers(QoS{})
	if err != nil || len(sel) != 3 {
		t.Fatalf("healthy selection = %v, %v", sel, err)
	}
	if n := reg.Snapshot().Counters["placement_fallback_total"]; n != 0 {
		t.Fatalf("healthy selection recorded %d fallbacks", n)
	}

	// Draining servers leave the pool while Actives remain.
	if err := meta.SetServerState("s1", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	sel, err = c.SelectServers(QoS{})
	if err != nil || len(sel) != 2 {
		t.Fatalf("selection with one draining = %v, %v", sel, err)
	}
	for _, a := range sel {
		if a == "s1" {
			t.Fatal("draining server selected while Active servers exist")
		}
	}

	// Every Active server Down: the draining-but-alive server carries.
	tracker.exclude("s2", true)
	tracker.exclude("s3", true)
	sel, err = c.SelectServers(QoS{})
	if err != nil || len(sel) != 1 || sel[0] != "s1" {
		t.Fatalf("selection = %v, %v; want the draining survivor", sel, err)
	}

	// Everything Down too: Down servers are re-admitted last instead
	// of returning ErrNoServers — the cluster may merely have flapped.
	tracker.exclude("s1", true)
	sel, err = c.SelectServers(QoS{})
	if err != nil || len(sel) == 0 {
		t.Fatalf("all-down selection = %v, %v; want re-admission", sel, err)
	}
	if n := reg.Snapshot().Counters["placement_fallback_total"]; n == 0 {
		t.Fatal("degraded selections recorded no placement_fallback_total")
	}

	// Removed is the only terminal state: tombstone everything and the
	// selector finally reports ErrNoServers.
	for _, a := range []string{"s1", "s2", "s3"} {
		if err := meta.SetServerState(a, metadata.ServerRemoved); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.SelectServers(QoS{}); !errors.Is(err, ErrNoServers) {
		t.Fatalf("all-removed selection err = %v, want ErrNoServers", err)
	}
}

func TestWriteSkipsDrainingServers(t *testing.T) {
	c, meta := newLifecycleClient(t, Options{BlockBytes: 1 << 10}, nil, "s1", "s2", "s3", "s4")
	if err := meta.SetServerState("s4", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := randData(32<<10, 90)
	ws, err := c.Write(ctx, "drain-skip", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := ws.PerServer["s4"]; hit {
		t.Fatalf("write placed %d blocks on the draining server", ws.PerServer["s4"])
	}
	if got, _, err := c.Read(ctx, "drain-skip"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
}

func TestWriteZoneShareCap(t *testing.T) {
	zones := map[string]string{}
	var addrs []string
	for i := 0; i < 6; i++ {
		a := fmt.Sprintf("s%d", i)
		addrs = append(addrs, a)
		zones[a] = fmt.Sprintf("z%d", i%3)
	}
	c, _ := newLifecycleClient(t, Options{BlockBytes: 1 << 10, MaxZoneShare: 0.4}, zones, addrs...)
	ctx := context.Background()
	data := randData(64<<10, 91)
	ws, err := c.Write(ctx, "zone-cap", data, nil)
	if err != nil {
		t.Fatal(err)
	}
	cap := placement.ZoneCapShares(0.4, ws.N)
	perZone := map[string]int{}
	for addr, n := range ws.PerServer {
		perZone[zones[addr]] += n
	}
	for z, n := range perZone {
		if n > cap {
			t.Fatalf("zone %s committed %d shares over the cap %d (N=%d, per-server %v)",
				z, n, cap, ws.N, ws.PerServer)
		}
	}
	if got, _, err := c.Read(ctx, "zone-cap"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
}

func TestRebalanceDrainMigratesAllShares(t *testing.T) {
	reg := obs.NewRegistry()
	c, meta := newLifecycleClient(t, Options{BlockBytes: 1 << 10, MaxServerShare: 0.35, Obs: reg},
		nil, "s1", "s2", "s3", "s4")
	ctx := context.Background()
	data := randData(48<<10, 92)
	if _, err := c.Write(ctx, "drained", data, nil); err != nil {
		t.Fatal(err)
	}
	if err := meta.SetServerState("s2", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	st, err := c.DrainProgress("s2")
	if err != nil {
		t.Fatal(err)
	}
	before := st.Shares

	d := NewDaemon(c, DaemonOptions{Rebalance: true, Obs: reg})
	stats, err := d.RebalanceOnce(ctx)
	if err != nil {
		t.Fatalf("rebalance: %v (stats %+v)", err, stats)
	}
	st, err = c.DrainProgress("s2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Shares != 0 {
		t.Fatalf("drain incomplete: %d shares still on s2 after %+v", st.Shares, stats)
	}
	if before > 0 && stats.Moved == 0 {
		t.Fatalf("drain completed with zero moves (held %d before): %+v", before, stats)
	}
	seg, err := meta.LookupSegment("drained")
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := seg.Placement["s2"]; hit {
		t.Fatal("placement still references the drained server")
	}
	if got, _, err := c.Read(ctx, "drained"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after drain: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["rebalance_moves_total"] == 0 || snap.Counters["rebalance_bytes_total"] == 0 {
		t.Fatalf("rebalance metrics missing: %v", snap.Counters)
	}
}

func TestRebalanceRespectsRateLimit(t *testing.T) {
	reg := obs.NewRegistry()
	c, meta := newLifecycleClient(t, Options{BlockBytes: 1 << 10, MaxServerShare: 0.35, Obs: reg},
		nil, "s1", "s2", "s3", "s4")
	ctx := context.Background()
	if _, err := c.Write(ctx, "ratelimited", randData(32<<10, 93), nil); err != nil {
		t.Fatal(err)
	}
	if err := meta.SetServerState("s1", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	// Burst of one share, refill fast enough that each subsequent move
	// waits ~1ms: the throttle engages measurably without slowing the
	// test measurably.
	d := NewDaemon(c, DaemonOptions{
		Rebalance:             true,
		RepairRateBytesPerSec: 1 << 20,
		RepairBurstBytes:      1 << 10,
		Obs:                   reg,
	})
	stats, err := d.RebalanceOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved < 2 {
		t.Fatalf("expected multiple moves, got %+v", stats)
	}
	if stats.Throttled == 0 {
		t.Fatalf("token bucket never engaged: %+v", stats)
	}
	snap := reg.Snapshot()
	h, ok := snap.Histograms["rebalance_throttle_seconds"]
	if !ok || h.Count == 0 {
		t.Fatal("rebalance_throttle_seconds histogram empty")
	}
	// Throughput respected the budget: moved bytes never exceed burst
	// plus rate x (observed throttle time + execution slack).
	if st, _ := c.DrainProgress("s1"); st.Shares != 0 {
		t.Fatalf("drain incomplete under throttling: %d left", st.Shares)
	}
}

func TestRebalanceRejoinConverges(t *testing.T) {
	c, meta := newLifecycleClient(t, Options{BlockBytes: 1 << 10}, nil, "s1", "s2")
	ctx := context.Background()
	data := randData(32<<10, 94)
	if _, err := c.Write(ctx, "rejoin", data, nil); err != nil {
		t.Fatal(err)
	}
	// A third server joins (a rejoin after remove/re-add looks the
	// same: an empty Active server).
	if err := c.AttachStore("s3", blockstore.NewMemStore()); err != nil {
		t.Fatal(err)
	}
	if err := meta.RegisterServer(metadata.Server{Addr: "s3"}); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(c, DaemonOptions{Rebalance: true})
	stats, err := d.RebalanceOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := meta.LookupSegment("rejoin")
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Placement["s3"]) == 0 {
		t.Fatalf("rejoined server got no shares (stats %+v, placement %v)",
			stats, countPlacement(seg.Placement))
	}
	if got, _, err := c.Read(ctx, "rejoin"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after rebalance: %v", err)
	}
}

func TestRebalanceSkipsStaleMoves(t *testing.T) {
	c, meta := newLifecycleClient(t, Options{BlockBytes: 1 << 10}, nil, "s1", "s2", "s3")
	ctx := context.Background()
	if _, err := c.Write(ctx, "stale", randData(16<<10, 95), nil); err != nil {
		t.Fatal(err)
	}
	if err := meta.SetServerState("s1", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	seg, err := meta.LookupSegment("stale")
	if err != nil {
		t.Fatal(err)
	}
	moves := placement.PlanSegment("stale", seg.Placement, c.placementCandidates(), placement.RebalancePolicy{})
	if len(moves) == 0 {
		t.Skip("planner found nothing to move")
	}
	// The placement changes under the plan: a concurrent repair (here,
	// a manual rewrite) rehomes the planned share before execution.
	mv := moves[0]
	seg.Placement[mv.From] = removeIndex(seg.Placement[mv.From], mv.Index)
	seg.Placement["s3"] = append(seg.Placement["s3"], mv.Index)
	if err := meta.UpdateSegment(seg); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(c, DaemonOptions{})
	moved, err := d.executeMove(ctx, mv)
	if err != nil {
		t.Fatalf("stale move errored: %v", err)
	}
	if moved {
		t.Fatal("stale move executed instead of skipping")
	}
}

func TestDaemonStartRunsRebalancePhase(t *testing.T) {
	reg := obs.NewRegistry()
	c, meta := newLifecycleClient(t, Options{BlockBytes: 1 << 10, Obs: reg}, nil, "s1", "s2", "s3")
	ctx := context.Background()
	if _, err := c.Write(ctx, "bg", randData(16<<10, 96), nil); err != nil {
		t.Fatal(err)
	}
	if err := meta.SetServerState("s1", metadata.ServerDraining); err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(c, DaemonOptions{ScrubInterval: 5 * time.Millisecond, Rebalance: true, Obs: reg})
	d.Start()
	// Wait for both the drain to finish and a full rebalance phase to
	// have run: the repair pass may evacuate s1 on its own, so the
	// share count alone doesn't prove the rebalance phase fired.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := c.DrainProgress("s1")
		if err == nil && st.Shares == 0 &&
			reg.Snapshot().Counters["rebalance_passes_total"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			d.Stop()
			t.Fatalf("background rebalance incomplete: %+v, passes=%d",
				st, reg.Snapshot().Counters["rebalance_passes_total"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.Stop()
}
