package robust

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/blockstore"
	"repro/internal/obs"
)

// DaemonOptions configure the self-healing scrub/repair daemon.
type DaemonOptions struct {
	// ScrubInterval is the pause between scrub passes (default 30s).
	ScrubInterval time.Duration
	// RepairRateBytesPerSec bounds repair write bandwidth with a token
	// bucket: each queued segment charges deficit·BlockBytes before its
	// repair runs. Zero disables throttling.
	RepairRateBytesPerSec int64
	// RepairBurstBytes is the bucket depth (default: one second of
	// rate). A repair larger than the burst still runs — it just waits
	// for the debt to amortize.
	RepairBurstBytes int64
	// Rebalance enables the rebalance phase: after each scrub/repair
	// pass the daemon plans share migrations off Draining/Removed and
	// over-full servers (and back onto rejoined ones) and executes
	// them under the same token bucket as repairs. Off by default.
	Rebalance bool
	// MaxZoneShare is the per-failure-domain share fraction the
	// rebalancer restores (0 = inherit the client's
	// Options.MaxZoneShare; both zero skips the zone pass).
	MaxZoneShare float64
	// Now is the clock (default time.Now); tests inject a fake so
	// throttle arithmetic is deterministic.
	Now func() time.Time
	// Obs, when non-nil, receives scrub_*, repair_queue_*, and
	// rebalance_* metrics.
	Obs *obs.Registry
}

func (o DaemonOptions) withDefaults() DaemonOptions {
	if o.ScrubInterval <= 0 {
		o.ScrubInterval = 30 * time.Second
	}
	if o.RepairBurstBytes <= 0 {
		o.RepairBurstBytes = o.RepairRateBytesPerSec
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// daemonMetrics are the daemon's metric handles (nil/no-op without a
// registry).
type daemonMetrics struct {
	passes         *obs.Counter
	segments       *obs.Counter
	corruptShares  *obs.Counter
	missingShares  *obs.Counter
	scrubErrors    *obs.Counter
	queueDepth     *obs.Gauge
	enqueued       *obs.Counter
	repaired       *obs.Counter
	repairErrors   *obs.Counter
	throttleSecond *obs.Histogram

	rebalancePasses     *obs.Counter
	rebalanceMoves      *obs.Counter
	rebalanceMoveErrors *obs.Counter
	rebalanceBytes      *obs.Counter
	rebalanceQueueDepth *obs.Gauge
	rebalanceThrottle   *obs.Histogram
}

func newDaemonMetrics(r *obs.Registry) daemonMetrics {
	return daemonMetrics{
		passes:         r.Counter("scrub_passes_total"),
		segments:       r.Counter("scrub_segments_total"),
		corruptShares:  r.Counter("scrub_corrupt_shares_total"),
		missingShares:  r.Counter("scrub_missing_shares_total"),
		scrubErrors:    r.Counter("scrub_errors_total"),
		queueDepth:     r.Gauge("repair_queue_depth"),
		enqueued:       r.Counter("repair_queue_enqueued_total"),
		repaired:       r.Counter("repair_queue_repaired_total"),
		repairErrors:   r.Counter("repair_queue_errors_total"),
		throttleSecond: r.Histogram("repair_throttle_seconds"),

		rebalancePasses:     r.Counter("rebalance_passes_total"),
		rebalanceMoves:      r.Counter("rebalance_moves_total"),
		rebalanceMoveErrors: r.Counter("rebalance_move_errors_total"),
		rebalanceBytes:      r.Counter("rebalance_bytes_total"),
		rebalanceQueueDepth: r.Gauge("rebalance_queue_depth"),
		rebalanceThrottle:   r.Histogram("rebalance_throttle_seconds"),
	}
}

// SegmentAudit is one segment's scrub result: how many of its placed
// shares are live, corrupt, or missing, and the redundancy deficit a
// repair would have to close.
type SegmentAudit struct {
	Name     string
	K, N     int
	Live     int // shares present and (where the holder scrubs) intact
	Corrupt  int // shares failing the holder's integrity scrub
	Missing  int // placed shares absent, or on unreachable holders
	Degraded bool
	// CorruptBy maps holder address to the corrupt share indices found
	// there; the daemon deletes these before repairing so corruption
	// becomes absence and the repair audit regenerates them.
	CorruptBy map[string][]int
}

// Deficit is the number of shares a repair must regenerate to restore
// the commit target N.
func (a SegmentAudit) Deficit() int {
	d := a.N - a.Live
	if d < 0 {
		return 0
	}
	return d
}

// NeedsRepair reports whether a repair pass would change anything.
// Missing shares trigger a repair even when surplus redundancy keeps
// the deficit at zero: the repair prunes dead holders from the
// placement and re-places their shares, so the placement converges
// back onto live servers instead of pointing at ghosts forever.
func (a SegmentAudit) NeedsRepair() bool {
	return a.Deficit() > 0 || a.Corrupt > 0 || a.Missing > 0 || a.Degraded
}

// Audit scrubs one segment: every holder in the placement is listed
// (presence) and, when it supports integrity scrubbing, scrubbed
// (corruption). No payload data moves.
func (c *Client) Audit(ctx context.Context, name string) (SegmentAudit, error) {
	seg, err := c.meta.LookupSegment(name)
	if err != nil {
		return SegmentAudit{}, err
	}
	audit := SegmentAudit{
		Name: name, K: seg.Coding.K, N: seg.Coding.N,
		Degraded:  seg.Degraded,
		CorruptBy: make(map[string][]int),
	}
	for addr, indices := range seg.Placement {
		if err := ctx.Err(); err != nil {
			return audit, err
		}
		store, ok := c.store(addr)
		if !ok {
			audit.Missing += len(indices)
			continue
		}
		present, err := store.List(ctx, name)
		c.reportOutcome(addr, err)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return audit, cerr
			}
			audit.Missing += len(indices)
			continue
		}
		have := make(map[int]bool, len(present))
		for _, i := range present {
			have[i] = true
		}
		// Scrub where the holder can verify; a holder without integrity
		// framing just counts presence.
		corrupt := map[int]bool{}
		if sc, ok := store.(blockstore.Scrubber); ok {
			bad, err := sc.Scrub(ctx, name)
			if err != nil && !errors.Is(err, blockstore.ErrScrubUnsupported) {
				if cerr := ctx.Err(); cerr != nil {
					return audit, cerr
				}
				c.reportOutcome(addr, err)
				audit.Missing += len(indices)
				continue
			}
			for _, i := range bad {
				corrupt[i] = true
			}
		}
		for _, i := range indices {
			switch {
			case corrupt[i]:
				audit.Corrupt++
				audit.CorruptBy[addr] = append(audit.CorruptBy[addr], i)
			case have[i]:
				audit.Live++
			default:
				audit.Missing++
			}
		}
	}
	return audit, nil
}

// tokenBucket throttles repair bandwidth with a reservation model:
// take always succeeds and returns how long the caller must wait for
// the reserved tokens to exist, so a repair larger than the burst
// still proceeds — it just pays its debt up front.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst int64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	return &tokenBucket{
		rate:   float64(rate),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now(),
		now:    now,
	}
}

// take reserves n tokens and returns the wait before they are funded.
// A nil bucket never throttles.
func (b *tokenBucket) take(n int64) time.Duration {
	if b == nil || n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// orderAudits sorts the repair queue by priority: Degraded segments
// first (they sit closest to the decode threshold), then the largest
// redundancy deficit, then name for a stable order.
func orderAudits(queue []SegmentAudit) {
	sort.Slice(queue, func(i, j int) bool {
		a, b := queue[i], queue[j]
		if a.Degraded != b.Degraded {
			return a.Degraded
		}
		if a.Deficit() != b.Deficit() {
			return a.Deficit() > b.Deficit()
		}
		return a.Name < b.Name
	})
}

// DaemonStats reports one scrub/repair pass.
type DaemonStats struct {
	Scanned   int // segments audited
	Enqueued  int // segments needing repair
	Repaired  int // repairs that succeeded
	Failed    int // repairs (or audits) that errored
	Corrupt   int // corrupt shares found (and deleted)
	Missing   int // missing shares found
	Throttled time.Duration
}

// Daemon is the self-healing control loop: it periodically scrubs
// every segment the metadata service knows, queues the damaged ones
// by redundancy deficit (Degraded first), and drains the queue
// through Client.Repair under the configured bandwidth budget.
type Daemon struct {
	c      *Client
	opts   DaemonOptions
	m      daemonMetrics
	bucket *tokenBucket

	startOnce sync.Once
	stopOnce  sync.Once
	cancel    context.CancelFunc
	wg        sync.WaitGroup
}

// NewDaemon builds a daemon over the client's metadata and backends.
func NewDaemon(c *Client, opts DaemonOptions) *Daemon {
	opts = opts.withDefaults()
	return &Daemon{
		c:      c,
		opts:   opts,
		m:      newDaemonMetrics(opts.Obs),
		bucket: newTokenBucket(opts.RepairRateBytesPerSec, opts.RepairBurstBytes, opts.Now),
	}
}

// RunOnce performs one full scrub-and-repair pass.
func (d *Daemon) RunOnce(ctx context.Context) (DaemonStats, error) {
	var stats DaemonStats
	d.m.passes.Inc()
	tr := d.c.obs.StartTrace("scrub-pass", "")
	var firstErr error
	defer func() { tr.End(firstErr) }()

	// Scrub phase: audit every segment.
	var queue []SegmentAudit
	for _, name := range d.c.meta.ListSegments() {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		audit, err := d.c.Audit(ctx, name)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return stats, cerr
			}
			d.m.scrubErrors.Inc()
			stats.Failed++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		stats.Scanned++
		stats.Corrupt += audit.Corrupt
		stats.Missing += audit.Missing
		d.m.segments.Inc()
		d.m.corruptShares.Add(int64(audit.Corrupt))
		d.m.missingShares.Add(int64(audit.Missing))
		if audit.NeedsRepair() {
			queue = append(queue, audit)
		}
	}
	orderAudits(queue)
	stats.Enqueued = len(queue)
	d.m.enqueued.Add(int64(len(queue)))
	d.m.queueDepth.Set(float64(len(queue)))
	if tr != nil {
		tr.Stagef("scrub", "scanned=%d queued=%d corrupt=%d missing=%d",
			stats.Scanned, len(queue), stats.Corrupt, stats.Missing)
	}

	// Repair phase: drain by priority under the bandwidth budget.
	for qi, audit := range queue {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// Turn corruption into absence: a deleted share fails the repair
		// audit's presence check, so Repair regenerates it. Deleting a
		// share the scrub already condemned cannot lose information.
		for addr, indices := range audit.CorruptBy {
			store, ok := d.c.store(addr)
			if !ok {
				continue
			}
			for _, i := range indices {
				if err := store.Delete(ctx, audit.Name, i); err != nil && ctx.Err() != nil {
					return stats, ctx.Err()
				}
			}
		}
		cost := int64(audit.Deficit()+audit.Corrupt) * d.c.opts.BlockBytes
		if wait := d.bucket.take(cost); wait > 0 {
			stats.Throttled += wait
			d.m.throttleSecond.Observe(wait.Seconds())
			if err := sleepCtx(ctx, wait); err != nil {
				return stats, err
			}
		}
		if _, err := d.c.Repair(ctx, audit.Name); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return stats, cerr
			}
			d.m.repairErrors.Inc()
			stats.Failed++
			if firstErr == nil {
				firstErr = err
			}
		} else {
			d.m.repaired.Inc()
			stats.Repaired++
		}
		d.m.queueDepth.Set(float64(len(queue) - qi - 1))
	}
	if tr != nil {
		tr.Stagef("repair", "repaired=%d failed=%d throttled=%s",
			stats.Repaired, stats.Failed, stats.Throttled)
	}
	return stats, firstErr
}

// Start launches the background loop: one immediate pass, then one
// per ScrubInterval until Stop. Pass errors are absorbed — a scrub
// pass failing (servers down) is exactly when the next pass matters.
func (d *Daemon) Start() {
	d.startOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		d.cancel = cancel
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			// Repair before rebalance: migrations plan against the
			// placement, so letting repair prune dead holders first
			// keeps the rebalancer from planning moves off ghosts.
			pass := func() {
				d.RunOnce(ctx)
				if d.opts.Rebalance && ctx.Err() == nil {
					d.RebalanceOnce(ctx)
				}
			}
			pass()
			ticker := time.NewTicker(d.opts.ScrubInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					pass()
				}
			}
		}()
	})
}

// Stop cancels the loop and waits for an in-flight pass to unwind.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() {
		if d.cancel != nil {
			d.cancel()
		}
		d.wg.Wait()
	})
}

// sleepCtx waits for d, honoring ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
