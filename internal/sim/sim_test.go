package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	k := New()
	if got := k.Run(); got != 0 {
		t.Fatalf("Run on empty kernel = %v, want 0", got)
	}
	if k.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", k.Fired())
	}
}

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(3, func(*Kernel) { order = append(order, 3) })
	k.At(1, func(*Kernel) { order = append(order, 1) })
	k.At(2, func(*Kernel) { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func(*Kernel) { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	k := New()
	var at1, at2 float64
	k.At(1.5, func(k *Kernel) { at1 = k.Now() })
	k.At(4.25, func(k *Kernel) { at2 = k.Now() })
	end := k.Run()
	//lint:ignore floateq event times are exact float literals; the kernel contract is bit-exact firing
	if at1 != 1.5 || at2 != 4.25 || end != 4.25 {
		t.Fatalf("clock wrong: at1=%v at2=%v end=%v", at1, at2, end)
	}
}

func TestAfterIsRelative(t *testing.T) {
	k := New()
	var fireTime float64
	k.At(2, func(k *Kernel) {
		k.After(3, func(k *Kernel) { fireTime = k.Now() })
	})
	k.Run()
	//lint:ignore floateq 2+3 is exact in float64; the kernel contract is bit-exact firing
	if fireTime != 5 {
		t.Fatalf("After fired at %v, want 5", fireTime)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(10, func(k *Kernel) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, nil)
	})
	k.Run()
}

func TestNaNTimePanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("NaN time did not panic")
		}
	}()
	k.At(math.NaN(), nil)
}

func TestCancel(t *testing.T) {
	k := New()
	fired := false
	e := k.At(1, func(*Kernel) { fired = true })
	if !k.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if k.Cancel(e) {
		t.Fatal("double Cancel returned true")
	}
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after cancel")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	k := New()
	e := k.At(1, nil)
	k.Run()
	if k.Cancel(e) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestCancelNil(t *testing.T) {
	k := New()
	if k.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestReschedule(t *testing.T) {
	k := New()
	var times []float64
	e := k.At(10, func(k *Kernel) { times = append(times, k.Now()) })
	k.At(1, func(k *Kernel) {
		if !k.Reschedule(e, 3) {
			t.Error("Reschedule returned false")
		}
	})
	k.Run()
	//lint:ignore floateq rescheduled time is an exact literal; firing must be bit-exact
	if len(times) != 1 || times[0] != 3 {
		t.Fatalf("rescheduled event fired at %v, want [3]", times)
	}
}

func TestRescheduleCanceled(t *testing.T) {
	k := New()
	e := k.At(10, nil)
	k.Cancel(e)
	if k.Reschedule(e, 20) {
		t.Fatal("Reschedule of canceled event returned true")
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		k.At(tm, func(*Kernel) { fired = append(fired, tm) })
	}
	k.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(fired))
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	k.Run()
	if len(fired) != 5 {
		t.Fatalf("resumed Run fired %d total, want 5", len(fired))
	}
}

func TestRunUntilAdvancesClockToDeadline(t *testing.T) {
	k := New()
	k.At(1, nil)
	end := k.RunUntil(10)
	//lint:ignore floateq RunUntil clamps to the exact literal bound
	if end != 10 {
		t.Fatalf("RunUntil advanced clock to %v, want 10", end)
	}
}

func TestStop(t *testing.T) {
	k := New()
	count := 0
	for i := 1; i <= 5; i++ {
		k.At(float64(i), func(k *Kernel) {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 2 {
		t.Fatalf("Stop: fired %d, want 2", count)
	}
	k.Run() // resumes
	if count != 5 {
		t.Fatalf("resume after Stop: fired %d, want 5", count)
	}
}

func TestStep(t *testing.T) {
	k := New()
	n := 0
	k.At(1, func(*Kernel) { n++ })
	k.At(2, func(*Kernel) { n++ })
	if !k.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !k.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestPeekTime(t *testing.T) {
	k := New()
	if !math.IsInf(k.PeekTime(), 1) {
		t.Fatal("PeekTime on empty queue not +Inf")
	}
	k.At(7, nil)
	//lint:ignore floateq PeekTime returns the exact literal the event was scheduled at
	if k.PeekTime() != 7 {
		t.Fatalf("PeekTime = %v, want 7", k.PeekTime())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next; checks the
	// kernel handles dynamically growing queues.
	k := New()
	const depth = 10000
	n := 0
	var chain func(*Kernel)
	chain = func(k *Kernel) {
		n++
		if n < depth {
			k.After(0.001, chain)
		}
	}
	k.At(0, chain)
	k.Run()
	if n != depth {
		t.Fatalf("chain fired %d, want %d", n, depth)
	}
}

// Property: for any set of event times, events fire in nondecreasing
// time order and the final clock equals the max time.
func TestQuickOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		k := New()
		var fired []float64
		for _, r := range raw {
			tm := float64(r) / 16.0
			k.At(tm, func(k *Kernel) { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		want := make([]float64, len(raw))
		for i, r := range raw {
			want[i] = float64(r) / 16.0
		}
		sort.Float64s(want)
		for i := range want {
			//lint:ignore floateq fired times must match the scheduled literals bit-exactly
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: canceling a random subset leaves exactly the others fired.
func TestQuickCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := New()
		n := 1 + rng.Intn(100)
		events := make([]*Event, n)
		firedSet := make(map[int]bool)
		for i := 0; i < n; i++ {
			i := i
			events[i] = k.At(rng.Float64()*100, func(*Kernel) { firedSet[i] = true })
		}
		canceled := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				k.Cancel(events[i])
				canceled[i] = true
			}
		}
		k.Run()
		for i := 0; i < n; i++ {
			if canceled[i] && firedSet[i] {
				t.Fatalf("trial %d: canceled event %d fired", trial, i)
			}
			if !canceled[i] && !firedSet[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func BenchmarkKernelThroughput(b *testing.B) {
	// Schedule/fire cycles; measures raw event throughput.
	k := New()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.At(k.Now()+rng.Float64(), nil)
		if k.Pending() > 1024 {
			k.RunUntil(k.PeekTime() + 0.5)
		}
	}
	k.Run()
}
