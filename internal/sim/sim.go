// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of timed
// events. Components schedule callbacks at absolute or relative virtual
// times; Run drains the queue in time order (FIFO among equal
// timestamps) until it is empty, a deadline passes, or the simulation is
// stopped. All times are float64 seconds of virtual time.
//
// The kernel is intentionally single-threaded: determinism matters more
// than parallelism for the experiments built on top of it, and the
// per-disk timelines in the RobuSTore evaluation are merged outside the
// kernel anyway (see internal/schemes).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The callback receives the kernel so it
// can schedule follow-up events.
type Event struct {
	// Time is the absolute virtual time at which the event fires.
	Time float64
	// Fn is invoked when the event fires. A nil Fn event is a no-op
	// (useful as a pure time marker with WaitUntil-style logic).
	Fn func(*Kernel)

	seq      uint64 // tie-break: FIFO among equal timestamps
	index    int    // heap index; -1 when not queued
	canceled bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	// Ordered comparisons only: exact float equality on virtual time
	// is schedule-dependent (floateq). Ties fall through to seq.
	if h[i].Time < h[j].Time {
		return true
	}
	if h[j].Time < h[i].Time {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is ready
// to use at virtual time 0.
type Kernel struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// New returns a kernel with the clock at virtual time 0.
func New() *Kernel { return &Kernel{} }

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events currently queued (including
// canceled events that have not yet been popped).
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (k *Kernel) At(t float64, fn func(*Kernel)) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	e := &Event{Time: t, Fn: fn, seq: k.seq}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn at Now()+d. Negative d panics.
func (k *Kernel) After(d float64, fn func(*Kernel)) *Event {
	return k.At(k.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op. It reports whether the event was
// actually removed from the queue.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	heap.Remove(&k.queue, e.index)
	return true
}

// Reschedule moves a pending event to a new absolute time, keeping its
// callback. It reports whether the event was pending (and thus moved).
func (k *Kernel) Reschedule(e *Event, t float64) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, k.now))
	}
	e.Time = t
	heap.Fix(&k.queue, e.index)
	return true
}

// Stop halts Run after the current event completes. Pending events stay
// queued; a subsequent Run resumes them.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue is empty or Stop is
// called. It returns the final virtual time.
func (k *Kernel) Run() float64 { return k.RunUntil(math.Inf(1)) }

// RunUntil executes events with Time <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to the
// deadline if it is finite and the queue drained early, so repeated
// RunUntil calls see monotone time.
func (k *Kernel) RunUntil(deadline float64) float64 {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.Time > deadline {
			break
		}
		heap.Pop(&k.queue)
		k.now = next.Time
		k.fired++
		if next.Fn != nil {
			next.Fn(k)
		}
	}
	if !math.IsInf(deadline, 1) && k.now < deadline && len(k.queue) == 0 {
		k.now = deadline
	}
	return k.now
}

// Step executes exactly one event if any is queued, returning true if
// an event fired.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	next := heap.Pop(&k.queue).(*Event)
	k.now = next.Time
	k.fired++
	if next.Fn != nil {
		next.Fn(k)
	}
	return true
}

// PeekTime returns the time of the next queued event, or +Inf if none.
func (k *Kernel) PeekTime() float64 {
	if len(k.queue) == 0 {
		return math.Inf(1)
	}
	return k.queue[0].Time
}
