package workload

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
)

func TestAccessValidate(t *testing.T) {
	ok := Access{Op: Read, Bytes: 1 << 30, BlockBytes: 1 << 20}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Blocks() != 1024 {
		t.Fatalf("Blocks = %d", ok.Blocks())
	}
	bad := []Access{
		{Bytes: 0, BlockBytes: 1},
		{Bytes: 10, BlockBytes: 0},
		{Bytes: 10, BlockBytes: 3},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("access %+v accepted", a)
		}
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" ||
		ReadAfterWrite.String() != "read-after-write" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op has empty name")
	}
}

func TestStandardSizesMultiplesOf1MB(t *testing.T) {
	for _, s := range StandardSizes {
		if s%(1<<20) != 0 {
			t.Fatalf("size %d not a 1MB multiple", s)
		}
	}
}

func TestLayoutPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fixed := disk.Layout{BlockingFactor: 256, PSeq: 1}
	hp := HomogeneousLayout(fixed)
	for i := 0; i < 10; i++ {
		if hp.Sample(rng) != fixed {
			t.Fatal("homogeneous policy returned varying layouts")
		}
	}
	het := HeterogeneousLayout()
	seen := map[disk.Layout]bool{}
	for i := 0; i < 100; i++ {
		seen[het.Sample(rng)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("heterogeneous policy produced only %d layouts", len(seen))
	}
}

func TestBackgroundPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if bg := NoBackground().Sample(rng); bg.Enabled() {
		t.Fatal("NoBackground enabled a stream")
	}
	hb := HomogeneousBackground(0.020)
	bg := hb.Sample(rng)
	//lint:ignore floateq Interval round-trips the exact literal 0.020
	if !bg.Enabled() || bg.Interval != 0.020 || bg.Sectors != 50 {
		t.Fatalf("homogeneous background wrong: %+v", bg)
	}
	het := HeterogeneousBackground()
	lo, hi := 1.0, 0.0
	for i := 0; i < 200; i++ {
		iv := het.Sample(rng).Interval
		if iv < het.MinInterval || iv > het.MaxInterval {
			t.Fatalf("interval %v outside [%v,%v]", iv, het.MinInterval, het.MaxInterval)
		}
		if iv < lo {
			lo = iv
		}
		if iv > hi {
			hi = iv
		}
	}
	if hi-lo < 0.1 {
		t.Fatalf("heterogeneous intervals barely vary: [%v,%v]", lo, hi)
	}
}

func TestBackgroundPolicyValidate(t *testing.T) {
	if err := NoBackground().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := HomogeneousBackground(0.01).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := HeterogeneousBackground().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BackgroundPolicy{
		{Mode: BgHomogeneous, Interval: 0, Sectors: 50},
		{Mode: BgHomogeneous, Interval: 0.01, Sectors: 0},
		{Mode: BgHeterogeneous, MinInterval: 0, MaxInterval: 1, Sectors: 50},
		{Mode: BgHeterogeneous, MinInterval: 0.2, MaxInterval: 0.1, Sectors: 50},
		{Mode: BackgroundMode(42)},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %+v accepted", p)
		}
	}
}
