// Package workload defines the synthetic workloads of §6.2.4: large
// sequential foreground accesses (128 MB – 1 GB reads and writes) and
// the per-disk variation policies the evaluation sweeps — in-disk data
// layout (heterogeneous random vs homogeneous) and competitive
// background request streams (none, homogeneous interval, or
// heterogeneous random intervals).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/disk"
)

// Op is the foreground operation type.
type Op int

// Foreground operations.
const (
	Read Op = iota
	Write
	ReadAfterWrite // write once (unbalanced striping), then measure reads
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case ReadAfterWrite:
		return "read-after-write"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Access is one foreground access specification.
type Access struct {
	Op         Op
	Bytes      int64 // total data size (original, pre-redundancy)
	BlockBytes int64 // coding/striping block size
}

// Validate reports whether the access is well formed.
func (a Access) Validate() error {
	if a.Bytes <= 0 || a.BlockBytes <= 0 {
		return fmt.Errorf("workload: access sizes must be positive")
	}
	if a.Bytes%a.BlockBytes != 0 {
		return fmt.Errorf("workload: access size %d not a multiple of block size %d",
			a.Bytes, a.BlockBytes)
	}
	return nil
}

// Blocks returns the number of original blocks (K).
func (a Access) Blocks() int { return int(a.Bytes / a.BlockBytes) }

// StandardSizes are the access sizes studied in §6.2.4.
var StandardSizes = []int64{128 << 20, 256 << 20, 512 << 20, 1 << 30}

// LayoutMode selects how per-disk in-disk layouts are drawn each trial.
type LayoutMode int

// Layout modes.
const (
	// LayoutHeterogeneous draws a random (blocking factor, PSeq) per
	// disk per trial — the §6.3.1 "heterogeneous layout".
	LayoutHeterogeneous LayoutMode = iota
	// LayoutHomogeneous gives every disk the same fixed layout — the
	// §6.3.2 "homogeneous layout" configuration.
	LayoutHomogeneous
)

// LayoutPolicy samples per-disk layouts.
type LayoutPolicy struct {
	Mode  LayoutMode
	Fixed disk.Layout // used in LayoutHomogeneous mode
}

// HeterogeneousLayout is the default §6.3.1 policy.
func HeterogeneousLayout() LayoutPolicy {
	return LayoutPolicy{Mode: LayoutHeterogeneous}
}

// HomogeneousLayout fixes every disk to the given layout.
func HomogeneousLayout(l disk.Layout) LayoutPolicy {
	return LayoutPolicy{Mode: LayoutHomogeneous, Fixed: l}
}

// Sample draws one disk's layout.
func (p LayoutPolicy) Sample(rng *rand.Rand) disk.Layout {
	if p.Mode == LayoutHomogeneous {
		return p.Fixed
	}
	return disk.RandomLayout(rng)
}

// BackgroundMode selects how competitive streams are drawn.
type BackgroundMode int

// Background modes.
const (
	// BgNone disables competitive workloads.
	BgNone BackgroundMode = iota
	// BgHomogeneous gives every disk the same mean arrival interval.
	BgHomogeneous
	// BgHeterogeneous draws each disk's interval uniformly from
	// [MinInterval, MaxInterval] per trial — the §6.3.2 "random
	// competitive workloads".
	BgHeterogeneous
)

// BackgroundPolicy samples per-disk competitive streams.
type BackgroundPolicy struct {
	Mode        BackgroundMode
	Interval    float64 // homogeneous mean inter-arrival (s)
	MinInterval float64 // heterogeneous bounds (s)
	MaxInterval float64
	Sectors     int // request size; paper uses ~50 sectors
}

// NoBackground disables competition.
func NoBackground() BackgroundPolicy { return BackgroundPolicy{Mode: BgNone} }

// HomogeneousBackground gives every disk the same interval.
func HomogeneousBackground(interval float64) BackgroundPolicy {
	return BackgroundPolicy{Mode: BgHomogeneous, Interval: interval, Sectors: 50}
}

// HeterogeneousBackground draws per-disk intervals from the paper's
// 6–200 ms range.
func HeterogeneousBackground() BackgroundPolicy {
	return BackgroundPolicy{Mode: BgHeterogeneous, MinInterval: 0.006, MaxInterval: 0.200, Sectors: 50}
}

// Sample draws one disk's background stream.
func (p BackgroundPolicy) Sample(rng *rand.Rand) disk.Background {
	switch p.Mode {
	case BgHomogeneous:
		return disk.Background{Interval: p.Interval, Sectors: p.Sectors}
	case BgHeterogeneous:
		iv := p.MinInterval + rng.Float64()*(p.MaxInterval-p.MinInterval)
		return disk.Background{Interval: iv, Sectors: p.Sectors}
	default:
		return disk.Background{}
	}
}

// Validate reports whether the policy is well formed.
func (p BackgroundPolicy) Validate() error {
	switch p.Mode {
	case BgNone:
		return nil
	case BgHomogeneous:
		if p.Interval <= 0 || p.Sectors <= 0 {
			return fmt.Errorf("workload: homogeneous background needs positive interval and sectors")
		}
	case BgHeterogeneous:
		if p.MinInterval <= 0 || p.MaxInterval < p.MinInterval || p.Sectors <= 0 {
			return fmt.Errorf("workload: heterogeneous background bounds invalid")
		}
	default:
		return fmt.Errorf("workload: unknown background mode %d", p.Mode)
	}
	return nil
}
