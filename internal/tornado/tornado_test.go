package tornado

import (
	"bytes"
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, p Params) *Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randBlocks(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{K: 0},
		{K: 10, Beta: -0.5},
		{K: 10, Beta: 1},
		{K: 10, CheckDegree: -2},
		{K: 10, TailSize: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestStructure(t *testing.T) {
	c := mustNew(t, Params{K: 1024, Seed: 1})
	// Rate should be close to 1-Beta = 0.5 (the cascade sums to
	// K·β/(1-β) checks plus the RS parities).
	if c.Rate() < 0.45 || c.Rate() > 0.55 {
		t.Fatalf("rate = %v, want ~0.5", c.Rate())
	}
	if c.Levels() < 3 {
		t.Fatalf("cascade has only %d levels for K=1024", c.Levels())
	}
	if c.N() <= c.K() {
		t.Fatal("no redundancy")
	}
}

func TestTinyKUsesRSOnly(t *testing.T) {
	c := mustNew(t, Params{K: 32, Seed: 1})
	if c.Levels() != 0 {
		t.Fatalf("K below TailSize should cascade 0 levels, got %d", c.Levels())
	}
	rng := rand.New(rand.NewSource(2))
	data := randBlocks(rng, 32, 16)
	coded, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Any K symbols suffice for the pure-RS case.
	d := c.NewDecoder()
	for _, idx := range rng.Perm(c.N())[:c.K()] {
		if err := d.Add(idx, coded[idx]); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Complete() {
		t.Fatal("pure-RS tornado did not decode from K symbols")
	}
}

func TestRoundTripFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := mustNew(t, Params{K: 256, Seed: 4})
	data := randBlocks(rng, 256, 32)
	coded, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	d := c.NewDecoder()
	for i, b := range coded {
		if err := d.Add(i, b); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Complete() {
		t.Fatal("decode incomplete with every symbol")
	}
	got, err := d.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestRecoversFromRandomSubset(t *testing.T) {
	// A tornado code at rate 1/2 should usually decode from ~(1+ε)K of
	// the 2K symbols; feed symbols in random order and record the
	// completion point.
	rng := rand.New(rand.NewSource(5))
	c := mustNew(t, Params{K: 512, Seed: 6})
	data := randBlocks(rng, 512, 8)
	coded, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	var totalOvh float64
	const trials = 8
	for tr := 0; tr < trials; tr++ {
		d := c.NewDecoder()
		for _, idx := range rng.Perm(c.N()) {
			if err := d.Add(idx, coded[idx]); err != nil {
				t.Fatal(err)
			}
			// Completeness checks are expensive mid-stream; probe
			// periodically.
			if d.Received()%64 == 0 && d.Complete() {
				break
			}
		}
		if d.Complete() {
			completed++
			totalOvh += float64(d.Received())/float64(c.K()) - 1
			got, err := d.Data()
			if err != nil {
				t.Fatal(err)
			}
			for i := range data {
				if !bytes.Equal(got[i], data[i]) {
					t.Fatalf("trial %d: block %d mismatch", tr, i)
				}
			}
		}
	}
	if completed < trials/2 {
		t.Fatalf("only %d/%d random-order trials decoded", completed, trials)
	}
	mean := totalOvh / float64(completed)
	if mean < 0 || mean > 1.0 {
		t.Fatalf("reception overhead %v implausible", mean)
	}
}

func TestToleratesErasedChecks(t *testing.T) {
	// Drop an entire check layer region: the cascade regenerates
	// checks from known inputs, so originals plus the RS tail decode.
	rng := rand.New(rand.NewSource(7))
	c := mustNew(t, Params{K: 256, Seed: 8})
	data := randBlocks(rng, 256, 8)
	coded, _ := c.Encode(data)
	d := c.NewDecoder()
	for i := 0; i < c.K(); i++ { // originals only
		d.Add(i, coded[i])
	}
	if !d.Complete() {
		t.Fatal("all originals present but decode incomplete")
	}
}

func TestDecoderValidation(t *testing.T) {
	c := mustNew(t, Params{K: 64, Seed: 1})
	d := c.NewDecoder()
	if err := d.Add(-1, []byte{1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := d.Add(c.N(), []byte{1}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := d.Add(0, nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := d.Add(0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(1, []byte{9}); err == nil {
		t.Fatal("size change accepted")
	}
	if err := d.Add(0, []byte{3, 4}); err != nil {
		t.Fatal("duplicate add errored")
	}
	if _, err := d.Data(); err == nil {
		t.Fatal("Data before completion accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustNew(t, Params{K: 16, Seed: 1})
	if _, err := c.Encode(make([][]byte, 3)); err == nil {
		t.Fatal("wrong count accepted")
	}
	rng := rand.New(rand.NewSource(1))
	bad := randBlocks(rng, 16, 8)
	bad[5] = []byte{1}
	if _, err := c.Encode(bad); err == nil {
		t.Fatal("ragged blocks accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a := mustNew(t, Params{K: 128, Seed: 9})
	b := mustNew(t, Params{K: 128, Seed: 9})
	rng := rand.New(rand.NewSource(10))
	data := randBlocks(rng, 128, 8)
	ca, _ := a.Encode(data)
	cb, _ := b.Encode(data)
	for i := range ca {
		if !bytes.Equal(ca[i], cb[i]) {
			t.Fatalf("symbol %d differs across same-seed codes", i)
		}
	}
}

func BenchmarkTornadoEncodeK1024(b *testing.B) {
	c, err := New(Params{K: 1024, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := randBlocks(rng, 1024, 16<<10)
	b.SetBytes(int64(1024 * 16 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}
