// Package tornado implements Tornado codes (§2.2.3): a cascade of
// sparse bipartite check layers B0..Bm-1 capped by a conventional
// optimal erasure code, giving linear-time encoding and decoding at a
// *fixed* rate 1-β. Each layer i maps its k·βⁱ input symbols to
// ⌈k·βⁱ⁺¹⌉ XOR check symbols; the last layer's checks are protected
// by a Reed-Solomon code of rate 1-β. The codeword is the original
// symbols plus every check layer plus the RS parities.
//
// Tornado codes are the fixed-rate ancestor of LT codes; RobuSTore
// rejects them precisely because their redundancy is fixed at design
// time (§5.2.1 requires ratelessness). They are implemented here to
// complete the erasure-code survey and the codes-comparison
// experiment. The layer graphs use a regular right-degree rather than
// the carefully optimized irregular distributions of the original
// paper — reception overhead is accordingly a little higher, which
// the comparison reports honestly.
package tornado

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gf256"
	"repro/internal/rs"
)

// Params configure a Tornado code.
type Params struct {
	// K is the number of original symbols.
	K int
	// Beta is the per-layer shrink factor; the overall code rate is
	// 1-Beta (default 0.5, i.e. 2x expansion).
	Beta float64
	// CheckDegree is each check symbol's input degree (default 8).
	CheckDegree int
	// TailSize stops the cascade once a layer is this small; the tail
	// is then protected by Reed-Solomon (default 64).
	TailSize int
	// Seed derives the deterministic layer graphs.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Beta == 0 {
		p.Beta = 0.5
	}
	if p.CheckDegree == 0 {
		p.CheckDegree = 8
	}
	if p.TailSize == 0 {
		p.TailSize = 64
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.K < 1 {
		return fmt.Errorf("tornado: K must be >= 1")
	}
	if p.Beta <= 0 || p.Beta >= 1 {
		return fmt.Errorf("tornado: Beta must be in (0,1)")
	}
	if p.CheckDegree < 1 {
		return fmt.Errorf("tornado: CheckDegree must be >= 1")
	}
	if p.TailSize < 2 {
		return fmt.Errorf("tornado: TailSize must be >= 2")
	}
	return nil
}

// layer is one bipartite check stage: checks[j] lists the indices (in
// the previous stage) XORed into check j.
type layer struct {
	in     int // symbols in the previous stage
	checks [][]int32
}

// Code is a constructed Tornado code. Symbols are globally indexed:
// [0,K) originals, then each layer's checks in order, then the RS
// parities.
type Code struct {
	params  Params
	layers  []layer
	rsCode  *rs.Code
	sizes   []int // symbol count per stage: K, |L1|, ..., |Lm|, |RS parity|
	offsets []int // global index of each stage's first symbol
	n       int   // total codeword symbols
}

// New constructs a Tornado code.
func New(params Params) (*Code, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(params.Seed))
	c := &Code{params: params}
	size := params.K
	c.sizes = append(c.sizes, size)
	for size > params.TailSize {
		next := int(math.Ceil(float64(size) * params.Beta))
		if next < 1 {
			next = 1
		}
		c.layers = append(c.layers, buildLayer(size, next, params.CheckDegree, rng))
		c.sizes = append(c.sizes, next)
		size = next
	}
	// RS tail of rate 1-Beta over the last stage (or over the
	// originals directly when K <= TailSize).
	parity := int(math.Ceil(float64(size) * params.Beta / (1 - params.Beta)))
	if parity < 1 {
		parity = 1
	}
	if size+parity > 256 {
		return nil, fmt.Errorf("tornado: tail %d+%d exceeds the RS field; lower TailSize", size, parity)
	}
	rsCode, err := rs.New(size, parity)
	if err != nil {
		return nil, err
	}
	c.rsCode = rsCode
	c.sizes = append(c.sizes, parity)
	c.offsets = make([]int, len(c.sizes))
	total := 0
	for i, s := range c.sizes {
		c.offsets[i] = total
		total += s
	}
	c.n = total
	return c, nil
}

// buildLayer generates one check stage: each check XORs CheckDegree
// distinct random inputs, with inputs covered uniformly (permutation
// stream, as in the improved LT codes).
func buildLayer(in, out, degree int, rng *rand.Rand) layer {
	l := layer{in: in, checks: make([][]int32, out)}
	perm := rng.Perm(in)
	pos := 0
	nextInput := func() int32 {
		if pos >= len(perm) {
			perm = rng.Perm(in)
			pos = 0
		}
		v := perm[pos]
		pos++
		return int32(v)
	}
	for j := 0; j < out; j++ {
		d := degree
		if d > in {
			d = in
		}
		nb := make([]int32, 0, d)
		seen := map[int32]bool{}
		for len(nb) < d {
			cand := nextInput()
			if seen[cand] {
				continue
			}
			seen[cand] = true
			nb = append(nb, cand)
		}
		l.checks[j] = nb
	}
	return l
}

// K returns the original symbol count.
func (c *Code) K() int { return c.params.K }

// N returns the total codeword symbols.
func (c *Code) N() int { return c.n }

// Rate returns K/N.
func (c *Code) Rate() float64 { return float64(c.params.K) / float64(c.n) }

// Levels returns the number of check layers (excluding the RS tail).
func (c *Code) Levels() int { return len(c.layers) }

// Encode produces the full codeword: originals, check layers, RS
// parities.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.params.K {
		return nil, fmt.Errorf("tornado: got %d blocks, K=%d", len(data), c.params.K)
	}
	size := len(data[0])
	for _, b := range data {
		if len(b) != size || size == 0 {
			return nil, fmt.Errorf("tornado: blocks must be equal-size and non-empty")
		}
	}
	out := make([][]byte, 0, c.n)
	out = append(out, data...)
	stage := data
	for _, l := range c.layers {
		next := make([][]byte, len(l.checks))
		for j, nb := range l.checks {
			chk := make([]byte, size)
			for _, i := range nb {
				gf256.XorSlice(stage[i], chk)
			}
			next[j] = chk
		}
		out = append(out, next...)
		stage = next
	}
	// RS over the last stage.
	shards := make([][]byte, c.rsCode.N())
	copy(shards, stage)
	if err := c.rsCode.Encode(shards); err != nil {
		return nil, err
	}
	out = append(out, shards[c.rsCode.K():]...)
	if len(out) != c.n {
		return nil, fmt.Errorf("tornado: internal size mismatch %d != %d", len(out), c.n)
	}
	return out, nil
}

// Decoder reconstructs the originals from a subset of codeword
// symbols.
type Decoder struct {
	code     *Code
	stages   [][][]byte // per stage, per symbol (nil = unknown)
	received int
	size     int
	solved   bool
}

// NewDecoder returns a fresh decoder.
func (c *Code) NewDecoder() *Decoder {
	d := &Decoder{code: c, stages: make([][][]byte, len(c.sizes))}
	for i, s := range c.sizes {
		d.stages[i] = make([][]byte, s)
	}
	return d
}

// stageOf maps a global symbol index to (stage, offset).
func (c *Code) stageOf(idx int) (int, int, error) {
	if idx < 0 || idx >= c.n {
		return 0, 0, fmt.Errorf("tornado: symbol index %d out of range", idx)
	}
	for s := len(c.offsets) - 1; s >= 0; s-- {
		if idx >= c.offsets[s] {
			return s, idx - c.offsets[s], nil
		}
	}
	return 0, 0, fmt.Errorf("tornado: unreachable index %d", idx)
}

// Add feeds one codeword symbol. Duplicates are ignored.
func (d *Decoder) Add(idx int, payload []byte) error {
	stage, off, err := d.code.stageOf(idx)
	if err != nil {
		return err
	}
	if len(payload) == 0 {
		return fmt.Errorf("tornado: empty payload")
	}
	if d.size == 0 {
		d.size = len(payload)
	} else if len(payload) != d.size {
		return fmt.Errorf("tornado: payload size %d != %d", len(payload), d.size)
	}
	if d.stages[stage][off] != nil {
		return nil
	}
	d.stages[stage][off] = payload
	d.received++
	d.solved = false
	return nil
}

// Received returns the number of distinct symbols consumed.
func (d *Decoder) Received() int { return d.received }

// solve runs the cascade recovery to a fixpoint: RS repairs the tail,
// known checks with one unknown input recover it (peeling), and fully
// known inputs regenerate erased checks for the next layer down.
func (d *Decoder) solve() {
	if d.solved || d.size == 0 {
		return
	}
	d.solved = true
	for changed := true; changed; {
		changed = false
		// RS tail: stages[m] inputs + stages[m+1] parities.
		m := len(d.stages) - 2
		known := 0
		for _, b := range d.stages[m] {
			if b != nil {
				known++
			}
		}
		if known < len(d.stages[m]) {
			shards := make([][]byte, d.code.rsCode.N())
			avail := 0
			for i, b := range d.stages[m] {
				shards[i] = b
				if b != nil {
					avail++
				}
			}
			for i, b := range d.stages[m+1] {
				shards[d.code.rsCode.K()+i] = b
				if b != nil {
					avail++
				}
			}
			if avail >= d.code.rsCode.K() {
				if err := d.code.rsCode.Reconstruct(shards); err == nil {
					for i := range d.stages[m] {
						if d.stages[m][i] == nil {
							d.stages[m][i] = shards[i]
							changed = true
						}
					}
				}
			}
		}
		// Check layers, bottom-up and top-down peeling.
		for li := len(d.code.layers) - 1; li >= 0; li-- {
			if d.peelLayer(li) {
				changed = true
			}
		}
	}
}

// peelLayer runs one peeling pass over layer li (inputs = stage li,
// checks = stage li+1). Returns whether anything was recovered.
func (d *Decoder) peelLayer(li int) bool {
	l := d.code.layers[li]
	in := d.stages[li]
	out := d.stages[li+1]
	changed := false
	for j, nb := range l.checks {
		unknown := -1
		nUnknown := 0
		for _, i := range nb {
			if in[i] == nil {
				unknown = int(i)
				nUnknown++
				if nUnknown > 1 {
					break
				}
			}
		}
		switch {
		case nUnknown == 0 && out[j] == nil:
			// Regenerate an erased check from its known inputs (feeds
			// the layer below).
			chk := make([]byte, d.size)
			for _, i := range nb {
				gf256.XorSlice(in[i], chk)
			}
			out[j] = chk
			changed = true
		case nUnknown == 1 && out[j] != nil:
			// Recover the single missing input.
			rec := make([]byte, d.size)
			copy(rec, out[j])
			for _, i := range nb {
				if int(i) != unknown {
					gf256.XorSlice(in[i], rec)
				}
			}
			in[unknown] = rec
			changed = true
		}
	}
	return changed
}

// Complete reports whether all K originals are recovered.
func (d *Decoder) Complete() bool {
	d.solve()
	for _, b := range d.stages[0] {
		if b == nil {
			return false
		}
	}
	return true
}

// Data returns the K original blocks; errors unless Complete.
func (d *Decoder) Data() ([][]byte, error) {
	if !d.Complete() {
		return nil, fmt.Errorf("tornado: decode incomplete")
	}
	return d.stages[0], nil
}
