package faultinject

import (
	"context"
	"fmt"

	"repro/internal/blockstore"
)

// faultStore injects per-op faults in front of a blockstore.Store —
// the "server handler" injection point: latency and stalls delay the
// op, resets/errors fail it, and corruption flips bits in GET
// payloads *after* any server-side checksum layer, emulating silent
// disk or transit corruption that only client-side share verification
// can catch.
type faultStore struct {
	inner blockstore.Store
	in    *Injector
}

// WrapStore wraps a store with the injector's per-op faults. A nil
// injector returns the store unchanged.
func WrapStore(inner blockstore.Store, in *Injector) blockstore.Store {
	if in == nil {
		return inner
	}
	return &faultStore{inner: inner, in: in}
}

// before applies the pre-op faults for op; a non-nil error means the
// op is dropped.
func (s *faultStore) before(ctx context.Context, op string) error {
	cfg := s.in.active()
	if !cfg.enabled() || !cfg.appliesTo(op) {
		return nil
	}
	delay := s.in.sampleDelay(cfg)
	if delay > 0 {
		s.in.m.latency.Inc()
	}
	if cfg.StallProb > 0 && s.in.roll(cfg.StallProb) {
		s.in.m.stalls.Inc()
		delay += cfg.Stall
		if cfg.DropOnStall {
			if err := sleep(ctx, delay); err != nil {
				return err
			}
			s.in.m.drops.Inc()
			return fmt.Errorf("%w: %s dropped after stall", ErrInjected, op)
		}
	}
	if err := sleep(ctx, delay); err != nil {
		return err
	}
	if cfg.ResetProb > 0 && s.in.roll(cfg.ResetProb) {
		s.in.m.resets.Inc()
		return fmt.Errorf("%w: %s reset", ErrInjected, op)
	}
	if cfg.ErrProb > 0 && s.in.roll(cfg.ErrProb) {
		s.in.m.errs.Inc()
		return fmt.Errorf("%w: %s failed", ErrInjected, op)
	}
	return nil
}

// Put implements blockstore.Store.
func (s *faultStore) Put(ctx context.Context, segment string, index int, data []byte) error {
	if err := s.before(ctx, "put"); err != nil {
		return err
	}
	return s.inner.Put(ctx, segment, index, data)
}

// Get implements blockstore.Store, optionally corrupting the payload.
func (s *faultStore) Get(ctx context.Context, segment string, index int) ([]byte, error) {
	if err := s.before(ctx, "get"); err != nil {
		return nil, err
	}
	b, err := s.inner.Get(ctx, segment, index)
	if err != nil {
		return nil, err
	}
	cfg := s.in.active()
	if len(b) > 0 && cfg.appliesTo("get") && cfg.CorruptProb > 0 && s.in.roll(cfg.CorruptProb) {
		s.in.m.corrupt.Inc()
		// Flip bits in a private copy — the inner store may have handed
		// out its own buffer.
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0xFF
		c[0] ^= 0x01
		return c, nil
	}
	return b, nil
}

// Delete implements blockstore.Store.
func (s *faultStore) Delete(ctx context.Context, segment string, index int) error {
	if err := s.before(ctx, "delete"); err != nil {
		return err
	}
	return s.inner.Delete(ctx, segment, index)
}

// List implements blockstore.Store.
func (s *faultStore) List(ctx context.Context, segment string) ([]int, error) {
	if err := s.before(ctx, "list"); err != nil {
		return nil, err
	}
	return s.inner.List(ctx, segment)
}

// Scrub forwards to the inner store's Scrubber behind "scrub"-op
// faults, so a server stack wrapped for chaos testing keeps its
// in-place verification ability. An inner store without one reports
// ErrScrubUnsupported.
func (s *faultStore) Scrub(ctx context.Context, segment string) ([]int, error) {
	sc, ok := s.inner.(blockstore.Scrubber)
	if !ok {
		return nil, blockstore.ErrScrubUnsupported
	}
	if err := s.before(ctx, "scrub"); err != nil {
		return nil, err
	}
	return sc.Scrub(ctx, segment)
}

// Close implements blockstore.Store.
func (s *faultStore) Close() error { return s.inner.Close() }
