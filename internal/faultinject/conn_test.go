package faultinject

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// dialServed starts a one-shot server behind the injector that reads
// one byte and answers with an 8-byte response, then returns a client
// conn to it.
func dialServed(t *testing.T, in *Injector) net.Conn {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := WrapListener(ln, in)
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := wrapped.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			return
		}
		conn.Write([]byte("response"))
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		ln.Close()
		<-done
	})
	return c
}

func TestConnReset(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(1, Config{ResetProb: 1}, reg)
	c := dialServed(t, in)
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := io.ReadFull(c, make([]byte, 8))
	if err == nil {
		t.Fatalf("read succeeded (%d bytes) despite ResetProb=1", n)
	}
	if reg.Counter("faultinject_resets_total").Value() != 1 {
		t.Fatal("reset counter not incremented")
	}
}

func TestConnShortRead(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(1, Config{ShortReadProb: 1}, reg)
	c := dialServed(t, in)
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8)
	n, err := io.ReadFull(c, buf)
	if err == nil {
		t.Fatal("full response arrived despite ShortReadProb=1")
	}
	if n == 0 || n >= 8 {
		t.Fatalf("want a truncated prefix, read %d bytes", n)
	}
	if reg.Counter("faultinject_short_reads_total").Value() != 1 {
		t.Fatal("short-read counter not incremented")
	}
}

func TestConnLatencyDelaysResponse(t *testing.T) {
	in := New(1, Config{Latency: 40 * time.Millisecond}, nil)
	c := dialServed(t, in)
	start := time.Now()
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("response after %v, expected >= 40ms injected latency", elapsed)
	}
}
