// Package faultinject creates the failure regime RobuSTore is built
// to survive: not clean crashes but *sustained partial failure* —
// slow disks, flaky links, corrupt payloads (§2.2.3, §6). An Injector
// wraps real components (net.Listener/net.Conn on the server side,
// blockstore.Store behind a server handler) with deterministic,
// seedable faults so the chaos test suite and `robustored -faults`
// can drive actual client/server pairs through stalls, resets, short
// reads, and bit flips, and assert the recovery pipeline (transport
// retries, hedged reads, share checksums, degraded commits) holds.
//
// The package is stdlib-only. All fault decisions are drawn from one
// seeded *rand.Rand under a mutex, so a given (seed, request
// sequence) replays the same faults. A nil *Injector is the disabled
// state: every method no-ops and the wrappers pass through.
package faultinject

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected marks a fault-injected failure, so tests can tell
// injected errors from real ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Config describes one fault mix. The zero value injects nothing.
// Probabilities are in [0, 1] and are rolled independently per
// operation (store wrapper) or per exchange (conn wrapper).
type Config struct {
	// Latency is a fixed delay added to every operation.
	Latency time.Duration
	// ParetoScale adds heavy-tailed extra latency distributed as
	// scale·(U^(-1/α) − 1): zero-minimum, occasionally enormous — the
	// paper's "slow to respond" disk. ParetoAlpha defaults to 1.5; the
	// sample is capped at 50·scale so a single draw cannot wedge a
	// test run forever.
	ParetoScale time.Duration
	ParetoAlpha float64
	// StallProb stalls an operation for Stall before serving it; with
	// DropOnStall the operation is dropped (store: ErrInjected; conn:
	// connection reset) after the stall instead — the
	// stall-then-drop shape of a dying NFS mount.
	StallProb   float64
	Stall       time.Duration
	DropOnStall bool
	// ResetProb abruptly fails the operation: the conn wrapper closes
	// the connection before responding, the store wrapper returns
	// ErrInjected without serving.
	ResetProb float64
	// ShortReadProb (conn wrapper only) writes a truncated response
	// frame and closes the connection, so the client observes a short
	// read mid-frame.
	ShortReadProb float64
	// CorruptProb (store wrapper, GET only) flips bits in the returned
	// payload — silent disk/transit corruption below any server-side
	// checksum, visible only to client-side share verification.
	CorruptProb float64
	// ErrProb fails a store operation with ErrInjected after any
	// latency has been served.
	ErrProb float64
	// Ops restricts store-level faults to the named operations
	// ("get", "put", "delete", "list", "scrub"); empty means all. The conn
	// wrapper ignores it (the wire does not know op boundaries until
	// decode).
	Ops []string
}

// enabled reports whether the config can inject anything.
func (c Config) enabled() bool {
	return c.Latency > 0 || c.ParetoScale > 0 || c.StallProb > 0 ||
		c.ResetProb > 0 || c.ShortReadProb > 0 || c.CorruptProb > 0 || c.ErrProb > 0
}

// appliesTo reports whether store-level faults cover op.
func (c Config) appliesTo(op string) bool {
	if len(c.Ops) == 0 {
		return true
	}
	for _, o := range c.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// metrics are the injector's fault counters (all nil/no-op without a
// registry): faultinject_{latency,stalls,drops,resets,short_reads,
// corruptions,errors}_total.
type metrics struct {
	latency    *obs.Counter
	stalls     *obs.Counter
	drops      *obs.Counter
	resets     *obs.Counter
	shortReads *obs.Counter
	corrupt    *obs.Counter
	errs       *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		latency:    r.Counter("faultinject_latency_total"),
		stalls:     r.Counter("faultinject_stalls_total"),
		drops:      r.Counter("faultinject_drops_total"),
		resets:     r.Counter("faultinject_resets_total"),
		shortReads: r.Counter("faultinject_short_reads_total"),
		corrupt:    r.Counter("faultinject_corruptions_total"),
		errs:       r.Counter("faultinject_errors_total"),
	}
}

// Injector owns one seeded fault stream and the currently active
// Config (either static or scheduled by a Scenario). Safe for
// concurrent use; a nil *Injector injects nothing.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	cfg      Config
	scenario *Scenario
	start    time.Time
	m        metrics
}

// New returns an injector with the given seed and static config. reg
// may be nil (no fault counters).
func New(seed int64, cfg Config, reg *obs.Registry) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		cfg:   cfg,
		start: time.Now(),
		m:     newMetrics(reg),
	}
}

// SetConfig replaces the static config (and detaches any scenario).
// Tests use it to flip fault phases explicitly.
func (in *Injector) SetConfig(cfg Config) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.cfg = cfg
	in.scenario = nil
	in.mu.Unlock()
}

// Run attaches a scenario and restarts its clock: from now on the
// active config is the scenario phase covering the elapsed time.
func (in *Injector) Run(s *Scenario) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.scenario = s
	in.start = time.Now()
	in.mu.Unlock()
}

// active returns the config in effect right now.
func (in *Injector) active() Config {
	if in == nil {
		return Config{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.scenario != nil {
		return in.scenario.at(time.Since(in.start))
	}
	return in.cfg
}

// roll draws one Bernoulli decision from the seeded stream.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// sampleDelay draws the latency for one operation: fixed + capped
// Pareto tail.
func (in *Injector) sampleDelay(cfg Config) time.Duration {
	d := cfg.Latency
	if cfg.ParetoScale > 0 {
		alpha := cfg.ParetoAlpha
		if alpha <= 0 {
			alpha = 1.5
		}
		in.mu.Lock()
		u := in.rng.Float64()
		in.mu.Unlock()
		for u == 0 {
			u = 0.5 // avoid the infinite tail exactly at 0
		}
		extra := time.Duration(float64(cfg.ParetoScale) * (math.Pow(u, -1/alpha) - 1))
		if limit := 50 * cfg.ParetoScale; extra > limit {
			extra = limit
		}
		d += extra
	}
	return d
}

// sleep waits for d, honoring ctx; returns ctx.Err() on cancellation.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
