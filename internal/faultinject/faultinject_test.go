package faultinject

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/internal/blockstore"
	"repro/internal/obs"
)

func TestNilInjectorPassesThrough(t *testing.T) {
	var in *Injector
	if got := in.active(); got.enabled() {
		t.Fatal("nil injector reports active faults")
	}
	inner := blockstore.NewMemStore()
	if WrapStore(inner, nil) != blockstore.Store(inner) {
		t.Fatal("WrapStore(nil) should return the inner store")
	}
	in.SetConfig(Config{Latency: time.Second}) // must not panic
	in.Run(NewScenario())
}

func TestStoreErrorInjectionDeterministic(t *testing.T) {
	// The same seed must fail the same ops in the same order.
	run := func(seed int64) []bool {
		in := New(seed, Config{ErrProb: 0.5}, nil)
		st := WrapStore(blockstore.NewMemStore(), in)
		ctx := context.Background()
		var outcomes []bool
		for i := 0; i < 64; i++ {
			err := st.Put(ctx, "seg", i, []byte{1})
			outcomes = append(outcomes, err == nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("injected failure not ErrInjected: %v", err)
			}
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identical seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault streams (suspicious)")
	}
}

func TestStoreCorruptionFlipsGetPayload(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(1, Config{CorruptProb: 1, Ops: []string{"get"}}, reg)
	st := WrapStore(blockstore.NewMemStore(), in)
	ctx := context.Background()
	orig := []byte("the quick brown fox")
	if err := st.Put(ctx, "seg", 0, orig); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get(ctx, "seg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("payload not corrupted despite CorruptProb=1")
	}
	// The stored copy must be untouched (corruption is in-flight).
	again, err := blockstore.Store(st).(*faultStore).inner.Get(ctx, "seg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, orig) {
		t.Fatal("injector corrupted the stored block, not the returned copy")
	}
	if reg.Counter("faultinject_corruptions_total").Value() == 0 {
		t.Fatal("corruption counter not incremented")
	}
}

func TestStoreStallThenDrop(t *testing.T) {
	in := New(1, Config{StallProb: 1, Stall: 30 * time.Millisecond, DropOnStall: true}, nil)
	st := WrapStore(blockstore.NewMemStore(), in)
	start := time.Now()
	err := st.Put(context.Background(), "seg", 0, []byte{1})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected after stall-drop, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("drop came after %v, before the configured stall", elapsed)
	}
}

func TestStoreStallHonorsContext(t *testing.T) {
	in := New(1, Config{StallProb: 1, Stall: 10 * time.Second}, nil)
	st := WrapStore(blockstore.NewMemStore(), in)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := st.Put(ctx, "seg", 0, []byte{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall did not honor context cancellation")
	}
}

func TestOpsRestriction(t *testing.T) {
	in := New(1, Config{ErrProb: 1, Ops: []string{"put"}}, nil)
	st := WrapStore(blockstore.NewMemStore(), in)
	ctx := context.Background()
	if err := st.Put(ctx, "seg", 0, []byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("put should fail, got %v", err)
	}
	if _, err := st.List(ctx, "seg"); err != nil {
		t.Fatalf("list should be exempt, got %v", err)
	}
}

func TestScenarioPhases(t *testing.T) {
	s := NewScenario(
		Phase{After: 0, Config: Config{ErrProb: 0.1}},
		Phase{After: 10 * time.Second, Config: Config{ErrProb: 0.9}},
		Phase{After: 20 * time.Second, Config: Config{}},
	)
	if got := s.at(5 * time.Second).ErrProb; got != 0.1 {
		t.Fatalf("phase 0: ErrProb=%v", got)
	}
	if got := s.at(15 * time.Second).ErrProb; got != 0.9 {
		t.Fatalf("phase 1: ErrProb=%v", got)
	}
	if got := s.at(25 * time.Second); got.enabled() {
		t.Fatalf("phase 2 should be healthy, got %+v", got)
	}
	// Before any phase: healthy.
	s2 := NewScenario(Phase{After: time.Hour, Config: Config{ErrProb: 1}})
	if s2.at(time.Minute).enabled() {
		t.Fatal("config active before its phase start")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("latency=2ms,pareto=10ms,alpha=1.2,stall=200ms@0.3,drop,reset=0.05,shortread=0.02,corrupt=0.1,err=0.5,ops=get+put")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Latency: 2 * time.Millisecond, ParetoScale: 10 * time.Millisecond,
		ParetoAlpha: 1.2, Stall: 200 * time.Millisecond, StallProb: 0.3,
		DropOnStall: true, ResetProb: 0.05, ShortReadProb: 0.02,
		CorruptProb: 0.1, ErrProb: 0.5,
	}
	if cfg.Latency != want.Latency || cfg.ParetoScale != want.ParetoScale ||
		cfg.ParetoAlpha != want.ParetoAlpha || cfg.Stall != want.Stall ||
		cfg.StallProb != want.StallProb || cfg.DropOnStall != want.DropOnStall ||
		cfg.ResetProb != want.ResetProb || cfg.ShortReadProb != want.ShortReadProb ||
		cfg.CorruptProb != want.CorruptProb || cfg.ErrProb != want.ErrProb {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if len(cfg.Ops) != 2 || cfg.Ops[0] != "get" || cfg.Ops[1] != "put" {
		t.Fatalf("ops = %v", cfg.Ops)
	}
	// stall without probability means always.
	cfg, err = ParseSpec("stall=1s")
	if err != nil || cfg.StallProb != 1 || cfg.Stall != time.Second {
		t.Fatalf("bare stall: cfg=%+v err=%v", cfg, err)
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec should parse: %v", err)
	}
	for _, bad := range []string{"bogus=1", "latency=fast", "corrupt=1.5", "drop=yes"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
}

// A bad spec entry must wrap (not flatten) the parse error so callers
// can reach the root cause with errors.As.
func TestParseSpecWrapsCause(t *testing.T) {
	_, err := ParseSpec("alpha=notafloat")
	if err == nil {
		t.Fatal("alpha=notafloat should not parse")
	}
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v severs the strconv cause from the chain", err)
	}
}

func TestParseScenario(t *testing.T) {
	s, err := ParseScenario("0s:latency=1ms;30s:stall=2s@0.5,drop;60s:")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.at(0).Latency; got != time.Millisecond {
		t.Fatalf("phase 0 latency=%v", got)
	}
	if got := s.at(31 * time.Second); got.Stall != 2*time.Second || !got.DropOnStall {
		t.Fatalf("phase 1 = %+v", got)
	}
	if s.at(2 * time.Minute).enabled() {
		t.Fatal("final phase should be healthy")
	}
	// Bare spec: one phase at t=0.
	s, err = ParseScenario("corrupt=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.at(0).CorruptProb; got != 0.5 {
		t.Fatalf("bare spec: corrupt=%v", got)
	}
	if _, err := ParseScenario("10s:bogus=1"); err == nil {
		t.Fatal("bad phase spec should not parse")
	}
}

func TestInjectorScenarioSwitchesOverTime(t *testing.T) {
	in := New(1, Config{}, nil)
	in.Run(NewScenario(
		Phase{After: 0, Config: Config{ErrProb: 1}},
		Phase{After: 50 * time.Millisecond, Config: Config{}},
	))
	st := WrapStore(blockstore.NewMemStore(), in)
	ctx := context.Background()
	if err := st.Put(ctx, "seg", 0, []byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("phase 0 should inject, got %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := st.Put(ctx, "seg", 0, []byte{1}); err != nil {
		t.Fatalf("phase 1 should be healthy, got %v", err)
	}
}

func TestParetoLatencyBoundedAndSeeded(t *testing.T) {
	in := New(3, Config{ParetoScale: time.Millisecond}, nil)
	cfg := in.active()
	for i := 0; i < 1000; i++ {
		d := in.sampleDelay(cfg)
		if d < 0 || d > 50*time.Millisecond {
			t.Fatalf("pareto sample %v outside [0, 50ms] cap", d)
		}
	}
}
