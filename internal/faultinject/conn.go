package faultinject

import (
	"net"
	"sync"
	"time"
)

// faultListener wraps accepted connections with conn-level faults.
type faultListener struct {
	net.Listener
	in *Injector
}

// WrapListener wraps a listener so every accepted connection passes
// through the injector's conn-level faults (latency, stall-then-drop,
// reset, short read). A nil injector returns ln unchanged.
func WrapListener(ln net.Listener, in *Injector) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, in: in}
}

// Accept implements net.Listener.
func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, in: l.in}, nil
}

// faultConn injects faults at response boundaries of a server-side
// connection. The block protocol is strictly request/response, so the
// first Write after a Read starts a new response; that is where one
// fault decision per exchange is drawn. Short reads are produced by
// truncating the response mid-frame and closing the connection;
// resets by closing before any response byte.
type faultConn struct {
	net.Conn
	in *Injector

	mu         sync.Mutex
	inResponse bool
}

// Read implements net.Conn, marking the start of a new exchange.
func (c *faultConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	c.inResponse = false
	c.mu.Unlock()
	return c.Conn.Read(b)
}

// Write implements net.Conn, applying at most one fault decision per
// response.
func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	first := !c.inResponse
	c.inResponse = true
	c.mu.Unlock()
	if !first {
		return c.Conn.Write(b)
	}
	cfg := c.in.active()
	if !cfg.enabled() {
		return c.Conn.Write(b)
	}
	delay := c.in.sampleDelay(cfg)
	if delay > 0 {
		c.in.m.latency.Inc()
	}
	if cfg.StallProb > 0 && c.in.roll(cfg.StallProb) {
		c.in.m.stalls.Inc()
		delay += cfg.Stall
		if cfg.DropOnStall {
			time.Sleep(delay)
			c.in.m.drops.Inc()
			c.Conn.Close()
			return 0, ErrInjected
		}
	}
	time.Sleep(delay)
	if cfg.ResetProb > 0 && c.in.roll(cfg.ResetProb) {
		c.in.m.resets.Inc()
		c.Conn.Close()
		return 0, ErrInjected
	}
	if cfg.ShortReadProb > 0 && c.in.roll(cfg.ShortReadProb) {
		c.in.m.shortReads.Inc()
		n := len(b) / 2
		if n > 0 {
			c.Conn.Write(b[:n])
		}
		c.Conn.Close()
		return n, ErrInjected
	}
	return c.Conn.Write(b)
}
