package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Phase is one timed step of a Scenario: Config becomes active After
// the scenario clock started.
type Phase struct {
	After  time.Duration
	Config Config
}

// Scenario schedules fault phases over time — e.g. healthy for 10s,
// then 30s of stalls, then healthy again — so a test or a long-lived
// robustored can move a server through a failure lifecycle instead of
// a single static fault mix. Phases are sorted by After; the active
// config at elapsed time t is the last phase with After <= t (zero
// config before the first phase).
type Scenario struct {
	phases []Phase
}

// NewScenario builds a scenario from phases (any order).
func NewScenario(phases ...Phase) *Scenario {
	s := &Scenario{phases: append([]Phase(nil), phases...)}
	sort.SliceStable(s.phases, func(i, j int) bool { return s.phases[i].After < s.phases[j].After })
	return s
}

// Phases returns a copy of the scenario's phases, sorted by After —
// for callers that derive layer-specific scenarios (e.g. robustored
// splits one spec into store-side and wire-side fault sets).
func (s *Scenario) Phases() []Phase { return append([]Phase(nil), s.phases...) }

// at returns the config active at elapsed time t.
func (s *Scenario) at(t time.Duration) Config {
	var active Config
	for _, p := range s.phases {
		if p.After > t {
			break
		}
		active = p.Config
	}
	return active
}

// ParseSpec parses a compact fault spec, the format behind
// `robustored -faults`:
//
//	latency=2ms,pareto=10ms,alpha=1.5,stall=200ms@0.3,drop,
//	reset=0.05,shortread=0.02,corrupt=0.1,err=0.5,ops=get+put
//
// Keys: latency (duration), pareto (duration scale), alpha (float),
// stall (duration@probability), drop (flag: drop after stall),
// reset / shortread / corrupt / err (probability), ops
// ('+'-separated op names). Unknown keys are errors.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, hasVal := strings.Cut(kv, "=")
		var err error
		switch key {
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "pareto":
			cfg.ParetoScale, err = time.ParseDuration(val)
		case "alpha":
			cfg.ParetoAlpha, err = strconv.ParseFloat(val, 64)
		case "stall":
			dur, prob, ok := strings.Cut(val, "@")
			cfg.Stall, err = time.ParseDuration(dur)
			cfg.StallProb = 1
			if err == nil && ok {
				cfg.StallProb, err = strconv.ParseFloat(prob, 64)
			}
		case "drop":
			if hasVal {
				return cfg, fmt.Errorf("faultinject: 'drop' takes no value")
			}
			cfg.DropOnStall = true
		case "reset":
			cfg.ResetProb, err = strconv.ParseFloat(val, 64)
		case "shortread":
			cfg.ShortReadProb, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			cfg.CorruptProb, err = strconv.ParseFloat(val, 64)
		case "err":
			cfg.ErrProb, err = strconv.ParseFloat(val, 64)
		case "ops":
			cfg.Ops = strings.Split(val, "+")
		default:
			return cfg, fmt.Errorf("faultinject: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: bad spec entry %q: %w", kv, err)
		}
	}
	if err := validateProbs(cfg); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func validateProbs(cfg Config) error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"stall", cfg.StallProb}, {"reset", cfg.ResetProb},
		{"shortread", cfg.ShortReadProb}, {"corrupt", cfg.CorruptProb},
		{"err", cfg.ErrProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: probability %s=%v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// ParseScenario parses ';'-separated phases, each "AFTER:SPEC" where
// AFTER is a duration offset and SPEC is a ParseSpec string (empty
// SPEC = healthy). A bare SPEC with no "AFTER:" prefix is a single
// phase at 0s:
//
//	"latency=1ms"                           one static phase
//	"0s:latency=1ms;30s:stall=2s@0.5,drop;60s:"
func ParseScenario(spec string) (*Scenario, error) {
	var phases []Phase
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		after := time.Duration(0)
		body := part
		if prefix, rest, ok := strings.Cut(part, ":"); ok {
			if d, err := time.ParseDuration(strings.TrimSpace(prefix)); err == nil {
				after, body = d, rest
			}
		}
		cfg, err := ParseSpec(body)
		if err != nil {
			return nil, err
		}
		phases = append(phases, Phase{After: after, Config: cfg})
	}
	return NewScenario(phases...), nil
}
