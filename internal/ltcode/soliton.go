// Package ltcode implements Luby Transform (LT) rateless erasure codes
// with the storage-oriented improvements described in the RobuSTore
// paper (§5.2.3): guaranteed decodability via coding-graph checking,
// uniform coverage of original blocks via pseudo-random permutation
// selection, lazy-XOR peeling decoding, and word-wide XOR kernels.
//
// An LT code over K original blocks generates a practically unlimited
// stream of coded blocks; each coded block is the XOR of d original
// blocks, where d is drawn from the robust soliton distribution with
// parameters C and δ. Any ~(1+ε)K coded blocks reconstruct the data
// with high probability; the improved codes here additionally guarantee
// that the *full* set of N generated blocks always decodes.
package ltcode

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params selects an LT code: K original blocks and the robust soliton
// shape parameters C (> 0) and Delta (0 < δ <= 1). Paper guidance
// (§5.2.4): C=1, δ=0.1 gives ~0.5 reception overhead at K=1024; larger
// C / smaller δ trades communication overhead for less CPU.
type Params struct {
	K     int
	C     float64
	Delta float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("ltcode: K must be >= 1, got %d", p.K)
	}
	if !(p.C > 0) {
		return fmt.Errorf("ltcode: C must be > 0, got %v", p.C)
	}
	if !(p.Delta > 0 && p.Delta <= 1) {
		return fmt.Errorf("ltcode: Delta must be in (0,1], got %v", p.Delta)
	}
	return nil
}

// RobustSoliton returns the robust soliton probability mass function
// μ(1..K) as a slice indexed 0..K-1 (entry i is the probability of
// degree i+1), following Luby's construction:
//
//	R = C·ln(K/δ)·√K
//	ρ(1) = 1/K, ρ(i) = 1/(i(i-1)) for i = 2..K
//	τ(i) = R/(iK) for i = 1..⌈K/R⌉-1, τ(⌈K/R⌉) = R·ln(R/δ)/K, else 0
//	μ(i) = (ρ(i)+τ(i))/β with β = Σ(ρ+τ)
func RobustSoliton(p Params) []float64 {
	k := p.K
	pmf := make([]float64, k)
	if k == 1 {
		pmf[0] = 1
		return pmf
	}
	// Ideal soliton ρ.
	pmf[0] = 1 / float64(k)
	for i := 2; i <= k; i++ {
		pmf[i-1] = 1 / (float64(i) * float64(i-1))
	}
	// Robust part τ.
	r := p.C * math.Log(float64(k)/p.Delta) * math.Sqrt(float64(k))
	if r > 0 {
		spike := int(math.Ceil(float64(k) / r))
		if spike < 1 {
			spike = 1
		}
		if spike > k {
			spike = k
		}
		for i := 1; i < spike; i++ {
			pmf[i-1] += r / (float64(i) * float64(k))
		}
		lr := math.Log(r / p.Delta)
		if lr > 0 {
			pmf[spike-1] += r * lr / float64(k)
		}
	}
	// Normalize by β.
	var beta float64
	for _, v := range pmf {
		beta += v
	}
	for i := range pmf {
		pmf[i] /= beta
	}
	return pmf
}

// IdealSoliton returns the ideal soliton distribution (robust part
// omitted), used in tests and analysis.
func IdealSoliton(k int) []float64 {
	pmf := make([]float64, k)
	if k == 1 {
		pmf[0] = 1
		return pmf
	}
	pmf[0] = 1 / float64(k)
	for i := 2; i <= k; i++ {
		pmf[i-1] = 1 / (float64(i) * float64(i-1))
	}
	return pmf
}

// MeanDegree returns the expected degree Σ i·μ(i) of a pmf.
func MeanDegree(pmf []float64) float64 {
	var m float64
	for i, v := range pmf {
		m += float64(i+1) * v
	}
	return m
}

// DegreeSampler draws degrees from a pmf by inverse-CDF binary search.
type DegreeSampler struct {
	cdf []float64
}

// NewDegreeSampler builds a sampler for the given pmf over 1..len(pmf).
func NewDegreeSampler(pmf []float64) *DegreeSampler {
	cdf := make([]float64, len(pmf))
	var acc float64
	for i, v := range pmf {
		acc += v
		cdf[i] = acc
	}
	// Guard against floating point shortfall at the top.
	cdf[len(cdf)-1] = 1
	return &DegreeSampler{cdf: cdf}
}

// Sample draws one degree in [1, K].
func (s *DegreeSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(s.cdf, u) + 1
}
