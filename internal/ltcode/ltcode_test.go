package ltcode

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{K: 1, C: 1, Delta: 0.5}, true},
		{Params{K: 1024, C: 0.1, Delta: 0.01}, true},
		{Params{K: 0, C: 1, Delta: 0.5}, false},
		{Params{K: 10, C: 0, Delta: 0.5}, false},
		{Params{K: 10, C: -1, Delta: 0.5}, false},
		{Params{K: 10, C: 1, Delta: 0}, false},
		{Params{K: 10, C: 1, Delta: 1.5}, false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.p, err, tc.ok)
		}
	}
}

func TestRobustSolitonIsDistribution(t *testing.T) {
	for _, p := range []Params{
		{K: 1, C: 1, Delta: 0.5},
		{K: 2, C: 1, Delta: 0.5},
		{K: 128, C: 1, Delta: 0.1},
		{K: 1024, C: 0.1, Delta: 0.9},
		{K: 1024, C: 2, Delta: 0.01},
	} {
		pmf := RobustSoliton(p)
		if len(pmf) != p.K {
			t.Fatalf("pmf length %d != K %d", len(pmf), p.K)
		}
		var sum float64
		for i, v := range pmf {
			if v < 0 {
				t.Fatalf("negative pmf[%d]=%v for %+v", i, v, p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pmf sums to %v for %+v", sum, p)
		}
	}
}

func TestRobustSolitonSpike(t *testing.T) {
	// The robust part must put extra mass at degree ~K/R compared to
	// the ideal soliton.
	p := Params{K: 1024, C: 1, Delta: 0.1}
	robust := RobustSoliton(p)
	ideal := IdealSoliton(p.K)
	r := p.C * math.Log(float64(p.K)/p.Delta) * math.Sqrt(float64(p.K))
	spike := int(math.Ceil(float64(p.K) / r))
	if robust[spike-1] <= ideal[spike-1] {
		t.Fatalf("no spike at degree %d: robust=%v ideal=%v", spike, robust[spike-1], ideal[spike-1])
	}
}

func TestMeanDegreeGrowsWithK(t *testing.T) {
	d128 := MeanDegree(RobustSoliton(Params{K: 128, C: 1, Delta: 0.5}))
	d1024 := MeanDegree(RobustSoliton(Params{K: 1024, C: 1, Delta: 0.5}))
	if d1024 <= d128 {
		t.Fatalf("mean degree should grow with K: d128=%v d1024=%v", d128, d1024)
	}
	// Paper: "average encoded-node degree is about five" for typical
	// parameters at K~1024.
	if d1024 < 3 || d1024 > 20 {
		t.Fatalf("mean degree at K=1024 out of plausible range: %v", d1024)
	}
}

func TestDegreeSamplerInRange(t *testing.T) {
	p := Params{K: 100, C: 1, Delta: 0.5}
	s := NewDegreeSampler(RobustSoliton(p))
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, p.K+1)
	for i := 0; i < 100000; i++ {
		d := s.Sample(rng)
		if d < 1 || d > p.K {
			t.Fatalf("sampled degree %d out of [1,%d]", d, p.K)
		}
		counts[d]++
	}
	// Degree 2 is the ideal-soliton mode (~1/2 mass); sanity check it.
	if counts[2] < 30000 {
		t.Fatalf("degree-2 frequency %d implausibly low", counts[2])
	}
}

func TestBuildGraphShape(t *testing.T) {
	p := Params{K: 64, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(2))
	g, err := BuildGraph(p, 256, rng, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.K != 64 || g.N != 256 || len(g.Neighbors) != 256 {
		t.Fatalf("graph shape wrong: K=%d N=%d", g.K, g.N)
	}
	for i, nb := range g.Neighbors {
		if len(nb) < 1 || len(nb) > g.K {
			t.Fatalf("coded block %d degree %d out of range", i, len(nb))
		}
		seen := map[int32]bool{}
		for _, j := range nb {
			if j < 0 || int(j) >= g.K {
				t.Fatalf("neighbor %d out of range", j)
			}
			if seen[j] {
				t.Fatalf("duplicate neighbor %d in coded block %d", j, i)
			}
			seen[j] = true
		}
	}
}

func TestBuildGraphErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BuildGraph(Params{K: 0, C: 1, Delta: 0.5}, 4, rng, GraphOptions{}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := BuildGraph(Params{K: 4, C: 1, Delta: 0.5}, 0, rng, GraphOptions{}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := BuildGraph(Params{K: 8, C: 1, Delta: 0.5}, 4, rng,
		GraphOptions{EnsureDecodable: true}); err == nil {
		t.Fatal("EnsureDecodable with N<K accepted")
	}
}

func TestUniformCoverage(t *testing.T) {
	// With permutation-stream selection, original-block degrees must be
	// nearly equal (paper: "same node degree, or, at most, different in
	// one"; duplicate-skip re-draws can add at most a little slack).
	p := Params{K: 128, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(3))
	g, err := BuildGraph(p, 512, rng, GraphOptions{UniformCoverage: true})
	if err != nil {
		t.Fatal(err)
	}
	deg := g.OriginalDegrees()
	minD, maxD := deg[0], deg[0]
	for _, d := range deg {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD-minD > 3 {
		t.Fatalf("uniform coverage spread too wide: min=%d max=%d", minD, maxD)
	}
	// Contrast: purely random selection should have a visibly wider
	// spread at the same size.
	g2, err := BuildGraph(p, 512, rng, GraphOptions{UniformCoverage: false})
	if err != nil {
		t.Fatal(err)
	}
	deg2 := g2.OriginalDegrees()
	min2, max2 := deg2[0], deg2[0]
	for _, d := range deg2 {
		if d < min2 {
			min2 = d
		}
		if d > max2 {
			max2 = d
		}
	}
	if max2-min2 <= maxD-minD {
		t.Fatalf("random selection spread (%d) not wider than uniform (%d)",
			max2-min2, maxD-minD)
	}
}

func TestEnsureDecodable(t *testing.T) {
	p := Params{K: 64, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g, err := BuildGraph(p, 96, rng, DefaultGraphOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !g.FullyDecodable() {
			t.Fatal("EnsureDecodable graph not fully decodable")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Params{K: 32, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(5))
	g, err := BuildGraph(p, 128, rng, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	const blockSize = 64
	orig := make([][]byte, p.K)
	for i := range orig {
		orig[i] = make([]byte, blockSize)
		rng.Read(orig[i])
	}
	coded, err := g.Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in random order until complete.
	d := NewDecoder(g)
	for _, idx := range rng.Perm(g.N) {
		if _, err := d.AddData(idx, coded[idx]); err != nil {
			t.Fatal(err)
		}
		if d.Complete() {
			break
		}
	}
	if !d.Complete() {
		t.Fatal("decode did not complete with all blocks")
	}
	got, err := d.Data()
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !bytes.Equal(got[i], orig[i]) {
			t.Fatalf("original block %d decoded incorrectly", i)
		}
	}
}

func TestDecodeFromSubset(t *testing.T) {
	// Decoding must succeed from a strict subset well short of N when
	// redundancy is ample.
	p := Params{K: 64, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(6))
	g, err := BuildGraph(p, 512, rng, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := NewSymbolicDecoder(g)
	perm := rng.Perm(g.N)
	used := 0
	for _, idx := range perm {
		d.Add(idx)
		used++
		if d.Complete() {
			break
		}
	}
	if !d.Complete() {
		t.Fatal("did not complete")
	}
	if used >= g.N {
		t.Fatalf("needed all %d blocks; expected completion well before", g.N)
	}
	if used < p.K {
		t.Fatalf("completed with %d < K=%d blocks: impossible", used, p.K)
	}
}

func TestDuplicateAddIgnored(t *testing.T) {
	p := Params{K: 16, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(7))
	g, err := BuildGraph(p, 64, rng, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := NewSymbolicDecoder(g)
	d.Add(0)
	n1 := d.Received()
	d.Add(0)
	if d.Received() != n1 {
		t.Fatal("duplicate Add counted twice")
	}
}

func TestAddDataErrors(t *testing.T) {
	p := Params{K: 8, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(8))
	g, _ := BuildGraph(p, 32, rng, DefaultGraphOptions())
	d := NewDecoder(g)
	if _, err := d.AddData(-1, []byte{1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := d.AddData(32, []byte{1}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	s := NewSymbolicDecoder(g)
	if _, err := s.AddData(0, []byte{1}); err == nil {
		t.Fatal("AddData on symbolic decoder accepted")
	}
	if _, err := s.Data(); err == nil {
		t.Fatal("Data on symbolic decoder accepted")
	}
	if _, err := d.Data(); err == nil {
		t.Fatal("Data before completion accepted")
	}
}

func TestSymbolicMatchesDataDecoder(t *testing.T) {
	// Feeding identical block orders, the symbolic and data decoders
	// must agree on completion point, decoded counts, and XOR ops.
	p := Params{K: 32, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(9))
	g, err := BuildGraph(p, 128, rng, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, p.K)
	for i := range orig {
		orig[i] = make([]byte, 16)
		rng.Read(orig[i])
	}
	coded, _ := g.Encode(orig)
	sym := NewSymbolicDecoder(g)
	dat := NewDecoder(g)
	for _, idx := range rng.Perm(g.N) {
		sym.Add(idx)
		dat.AddData(idx, coded[idx])
		if sym.DecodedCount() != dat.DecodedCount() {
			t.Fatalf("decoded counts diverge: sym=%d dat=%d", sym.DecodedCount(), dat.DecodedCount())
		}
		if sym.XorOps() != dat.XorOps() {
			t.Fatalf("xor ops diverge: sym=%d dat=%d", sym.XorOps(), dat.XorOps())
		}
		if sym.Complete() {
			break
		}
	}
	if !sym.Complete() || !dat.Complete() {
		t.Fatal("decoders did not complete together")
	}
}

func TestLazyXorSkipsRedundantBlocks(t *testing.T) {
	// After completion, adding more blocks must cost zero extra XORs.
	p := Params{K: 32, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(10))
	g, _ := BuildGraph(p, 256, rng, DefaultGraphOptions())
	d := NewSymbolicDecoder(g)
	perm := rng.Perm(g.N)
	i := 0
	for ; i < len(perm); i++ {
		d.Add(perm[i])
		if d.Complete() {
			break
		}
	}
	ops := d.XorOps()
	for ; i < len(perm); i++ {
		d.Add(perm[i])
	}
	if d.XorOps() != ops {
		t.Fatalf("XOR ops grew after completion: %d -> %d", ops, d.XorOps())
	}
	// Exactly K blocks are "used" (each decode produces one original).
	if d.UsedBlocks() != p.K {
		t.Fatalf("UsedBlocks = %d, want K=%d", d.UsedBlocks(), p.K)
	}
}

func TestReceptionOverheadRange(t *testing.T) {
	// Paper §5.2.4: for sane parameters overhead lands around 0.3-0.5
	// at K=1024 — allow a generous envelope at smaller K.
	p := Params{K: 256, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(11))
	st := MeasureOverheadStats(p, 4*p.K, 20, rng, DefaultGraphOptions())
	if st.Failures > 0 {
		t.Fatalf("%d overhead trials failed to decode", st.Failures)
	}
	if st.MeanOverhead < 0.05 || st.MeanOverhead > 1.2 {
		t.Fatalf("mean reception overhead %v outside plausible range", st.MeanOverhead)
	}
}

func TestAffectedCoded(t *testing.T) {
	p := Params{K: 16, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(12))
	g, _ := BuildGraph(p, 64, rng, DefaultGraphOptions())
	for orig := 0; orig < p.K; orig++ {
		affected := g.AffectedCoded(orig)
		// Cross-check against the neighbor lists.
		want := 0
		for _, nb := range g.Neighbors {
			for _, j := range nb {
				if int(j) == orig {
					want++
					break
				}
			}
		}
		if len(affected) != want {
			t.Fatalf("AffectedCoded(%d) = %d entries, want %d", orig, len(affected), want)
		}
	}
}

func TestEncodeBlockIsXorOfNeighbors(t *testing.T) {
	p := Params{K: 8, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(13))
	g, _ := BuildGraph(p, 16, rng, DefaultGraphOptions())
	orig := make([][]byte, p.K)
	for i := range orig {
		orig[i] = make([]byte, 8)
		rng.Read(orig[i])
	}
	for i := 0; i < g.N; i++ {
		got := g.EncodeBlock(i, orig)
		want := make([]byte, 8)
		for _, j := range g.Neighbors[i] {
			for b := range want {
				want[b] ^= orig[j][b]
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("EncodeBlock(%d) wrong", i)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	p := Params{K: 4, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(14))
	g, _ := BuildGraph(p, 8, rng, DefaultGraphOptions())
	if _, err := g.Encode(make([][]byte, 3)); err == nil {
		t.Fatal("wrong block count accepted")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 5), make([]byte, 4)}
	if _, err := g.Encode(bad); err == nil {
		t.Fatal("unequal block sizes accepted")
	}
}

func TestK1Degenerate(t *testing.T) {
	p := Params{K: 1, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(15))
	g, err := BuildGraph(p, 4, rng, DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := NewSymbolicDecoder(g)
	d.Add(0)
	if !d.Complete() {
		t.Fatal("K=1 should decode from any single block")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	type cfg struct {
		Seed int64
	}
	f := func(c cfg) bool {
		rng := rand.New(rand.NewSource(c.Seed))
		k := 2 + rng.Intn(40)
		n := k + k/2 + rng.Intn(3*k)
		g, err := BuildGraph(Params{K: k, C: 1, Delta: 0.5}, n, rng, DefaultGraphOptions())
		if err != nil {
			return false
		}
		size := 1 + rng.Intn(64)
		orig := make([][]byte, k)
		for i := range orig {
			orig[i] = make([]byte, size)
			rng.Read(orig[i])
		}
		coded, err := g.Encode(orig)
		if err != nil {
			return false
		}
		d := NewDecoder(g)
		for _, idx := range rng.Perm(n) {
			d.AddData(idx, coded[idx])
			if d.Complete() {
				break
			}
		}
		if !d.Complete() {
			return false
		}
		got, err := d.Data()
		if err != nil {
			return false
		}
		for i := range orig {
			if !bytes.Equal(got[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodedNeverExceedsK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(30)
		g, err := BuildGraph(Params{K: k, C: 1, Delta: 0.5}, 4*k, rng, DefaultGraphOptions())
		if err != nil {
			return false
		}
		d := NewSymbolicDecoder(g)
		for _, idx := range rng.Perm(g.N) {
			d.Add(idx)
			if d.DecodedCount() > k || d.Received() > g.N {
				return false
			}
		}
		return d.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func benchDecode(b *testing.B, k, blockKB int) {
	p := Params{K: k, C: 1, Delta: 0.1}
	rng := rand.New(rand.NewSource(1))
	g, err := BuildGraph(p, 3*k, rng, DefaultGraphOptions())
	if err != nil {
		b.Fatal(err)
	}
	size := blockKB << 10
	orig := make([][]byte, k)
	for i := range orig {
		orig[i] = make([]byte, size)
		rng.Read(orig[i])
	}
	coded, _ := g.Encode(orig)
	order := rng.Perm(g.N)
	b.SetBytes(int64(k * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(g)
		for _, idx := range order {
			d.AddData(idx, coded[idx])
			if d.Complete() {
				break
			}
		}
		if !d.Complete() {
			b.Fatal("decode incomplete")
		}
	}
}

func BenchmarkDecodeK128Block16K(b *testing.B)  { benchDecode(b, 128, 16) }
func BenchmarkDecodeK1024Block16K(b *testing.B) { benchDecode(b, 1024, 16) }

func BenchmarkEncodeK1024Block16K(b *testing.B) {
	p := Params{K: 1024, C: 1, Delta: 0.1}
	rng := rand.New(rand.NewSource(1))
	g, err := BuildGraph(p, 3*1024, rng, DefaultGraphOptions())
	if err != nil {
		b.Fatal(err)
	}
	orig := make([][]byte, p.K)
	for i := range orig {
		orig[i] = make([]byte, 16<<10)
		rng.Read(orig[i])
	}
	b.SetBytes(int64(p.K * 16 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Encode(orig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGraphK1024(b *testing.B) {
	p := Params{K: 1024, C: 1, Delta: 0.5}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(p, 4096, rng, DefaultGraphOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
