package ltcode

import (
	"fmt"
	"math/rand"
)

// Graph is a bipartite LT coding graph connecting K original blocks to
// N coded blocks. Neighbors[i] lists the original-block indices XORed
// into coded block i. A Graph is immutable after construction and safe
// for concurrent use.
type Graph struct {
	K, N      int
	Neighbors [][]int32
}

// GraphOptions control the storage-oriented improvements of §5.2.3.
type GraphOptions struct {
	// UniformCoverage selects neighbors from a stream of random
	// permutations of the original blocks so that every original
	// block's degree differs by at most ~1 (improvement 2).
	UniformCoverage bool
	// EnsureDecodable regenerates the graph until the full set of N
	// coded blocks peels to all K originals (improvement 1). Requires
	// N >= K.
	EnsureDecodable bool
	// MaxAttempts bounds the regeneration loop (default 64).
	MaxAttempts int
}

// DefaultGraphOptions are the improved-LT settings used by RobuSTore.
func DefaultGraphOptions() GraphOptions {
	return GraphOptions{UniformCoverage: true, EnsureDecodable: true, MaxAttempts: 64}
}

// BuildGraph generates a coding graph with N coded blocks using the
// given parameters and RNG. With EnsureDecodable it retries until the
// graph is fully decodable and returns an error if MaxAttempts graphs
// all fail (practically impossible for N >= ~1.2K with sane C, δ).
func BuildGraph(p Params, n int, rng *rand.Rand, opts GraphOptions) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("ltcode: N must be >= 1, got %d", n)
	}
	if opts.EnsureDecodable && n < p.K {
		return nil, fmt.Errorf("ltcode: decodability requires N >= K (N=%d, K=%d)", n, p.K)
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 64
	}
	sampler := NewDegreeSampler(RobustSoliton(p))
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g := generate(p.K, n, sampler, rng, opts.UniformCoverage)
		if !opts.EnsureDecodable || g.FullyDecodable() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("ltcode: no decodable graph in %d attempts (K=%d, N=%d, C=%v, δ=%v)",
		maxAttempts, p.K, n, p.C, p.Delta)
}

// generate builds one candidate graph. All neighbor lists are carved
// from one shared arena instead of one allocation per coded block; the
// arena may relocate while growing, so lists are recorded as offsets
// and sliced out only at the end. The RNG call sequence is identical to
// the per-block version — the graph is rebuilt from a stored seed, so
// the draw order is part of the storage format.
func generate(k, n int, sampler *DegreeSampler, rng *rand.Rand, uniform bool) *Graph {
	g := &Graph{K: k, N: n, Neighbors: make([][]int32, n)}
	var stream *permStream
	if uniform {
		stream = newPermStream(k, rng)
	}
	seen := make([]int32, k) // epoch marker per original block
	offs := make([]int, n+1)
	arena := make([]int32, 0, k+n) // ~avg degree slightly above 1 edge/block
	for i := 0; i < n; i++ {
		d := sampler.Sample(rng)
		if d > k {
			d = k
		}
		epoch := int32(i + 1)
		for cnt := 0; cnt < d; {
			var cand int32
			if uniform {
				cand = stream.next()
			} else {
				cand = int32(rng.Intn(k))
			}
			if seen[cand] == epoch {
				continue // duplicate within this coded block; draw again
			}
			seen[cand] = epoch
			arena = append(arena, cand)
			cnt++
		}
		offs[i+1] = len(arena)
	}
	for i := 0; i < n; i++ {
		g.Neighbors[i] = arena[offs[i]:offs[i+1]:offs[i+1]]
	}
	return g
}

// permStream yields original-block indices from successive random
// permutations, implementing the pseudo-random selection technique of
// §5.2.3 that equalizes original-block degrees.
type permStream struct {
	k    int
	rng  *rand.Rand
	perm []int32
	pos  int
}

func newPermStream(k int, rng *rand.Rand) *permStream {
	s := &permStream{k: k, rng: rng, perm: make([]int32, k), pos: k}
	return s
}

func (s *permStream) next() int32 {
	if s.pos >= s.k {
		for i := range s.perm {
			s.perm[i] = int32(i)
		}
		s.rng.Shuffle(s.k, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
		s.pos = 0
	}
	v := s.perm[s.pos]
	s.pos++
	return v
}

// FullyDecodable reports whether peeling over all N coded blocks
// recovers every original block.
func (g *Graph) FullyDecodable() bool {
	d := NewSymbolicDecoder(g)
	for i := 0; i < g.N; i++ {
		if d.Add(i) && d.Complete() {
			return true
		}
	}
	return d.Complete()
}

// Degree returns the degree of coded block i.
func (g *Graph) Degree(i int) int { return len(g.Neighbors[i]) }

// AvgCodedDegree returns the mean coded-block degree of the graph.
func (g *Graph) AvgCodedDegree() float64 {
	var sum int
	for _, nb := range g.Neighbors {
		sum += len(nb)
	}
	return float64(sum) / float64(g.N)
}

// OriginalDegrees returns the degree of each original block (how many
// coded blocks reference it) — used to verify uniform coverage and to
// bound update cost (§4.3.4).
func (g *Graph) OriginalDegrees() []int {
	deg := make([]int, g.K)
	for _, nb := range g.Neighbors {
		for _, j := range nb {
			deg[j]++
		}
	}
	return deg
}

// Edges returns the total number of edges in the graph.
func (g *Graph) Edges() int {
	var sum int
	for _, nb := range g.Neighbors {
		sum += len(nb)
	}
	return sum
}

// AffectedCoded returns the indices of coded blocks that reference the
// given original block — the set that must be re-generated when that
// original block is updated (§4.3.4).
func (g *Graph) AffectedCoded(orig int) []int {
	var out []int
	for i, nb := range g.Neighbors {
		for _, j := range nb {
			if int(j) == orig {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// EncodeBlock computes coded block i from the original data blocks.
// All data blocks must be the same length.
func (g *Graph) EncodeBlock(i int, data [][]byte) []byte {
	return g.EncodeBlockInto(make([]byte, len(data[g.Neighbors[i][0]])), i, data)
}

// EncodeBlockInto computes coded block i into dst, which must be
// exactly one block long, and returns it. It allocates nothing — the
// write hot path encodes into pooled buffers (DESIGN.md §10).
func (g *Graph) EncodeBlockInto(dst []byte, i int, data [][]byte) []byte {
	nb := g.Neighbors[i]
	copy(dst, data[nb[0]])
	for _, j := range nb[1:] {
		xorWords(data[j], dst)
	}
	return dst
}

// Encode computes all N coded blocks.
func (g *Graph) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != g.K {
		return nil, fmt.Errorf("ltcode: Encode got %d blocks, graph has K=%d", len(data), g.K)
	}
	size := len(data[0])
	for _, b := range data {
		if len(b) != size {
			return nil, fmt.Errorf("ltcode: unequal block sizes")
		}
	}
	out := make([][]byte, g.N)
	for i := 0; i < g.N; i++ {
		out[i] = g.EncodeBlock(i, data)
	}
	return out, nil
}
