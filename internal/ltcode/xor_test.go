package ltcode

import (
	"bytes"
	"math/rand"
	"testing"
)

// xorNaive is the reference implementation the wide kernel must match
// bit-for-bit at every length and offset.
func xorNaive(src, dst []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func TestXorWordsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 31, 63, 64, 65, 127, 128, 129, 1 << 10, 1<<16 + 13}
	for _, n := range lengths {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := append([]byte(nil), dst...)
		xorNaive(src, want)
		xorWords(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("xorWords mismatch at length %d", n)
		}
	}
}

func TestXorWordsUnalignedTail(t *testing.T) {
	// Exercise every split of main loop, word tail, and byte tail by
	// offsetting into a shared backing array.
	rng := rand.New(rand.NewSource(11))
	backing := make([]byte, 512)
	rng.Read(backing)
	for off := 0; off < 16; off++ {
		for n := 0; n < 200; n++ {
			src := make([]byte, n)
			copy(src, backing[off:])
			dst := make([]byte, n)
			rng.Read(dst)
			want := append([]byte(nil), dst...)
			xorNaive(src, want)
			xorWords(src, dst)
			if !bytes.Equal(dst, want) {
				t.Fatalf("xorWords mismatch at offset %d length %d", off, n)
			}
		}
	}
}

func TestXorWordsSelfIdentity(t *testing.T) {
	// x ^= x must zero the buffer (identical aliasing is allowed).
	buf := make([]byte, 777)
	rand.New(rand.NewSource(3)).Read(buf)
	xorWords(buf, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("self-xor left non-zero byte %#x at %d", b, i)
		}
	}
}

func TestXorWordsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("xorWords accepted mismatched lengths")
		}
	}()
	xorWords(make([]byte, 8), make([]byte, 9))
}

func BenchmarkXorWords(b *testing.B) {
	for _, n := range []int{1 << 10, 64 << 10, 1 << 20} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			src := make([]byte, n)
			dst := make([]byte, n)
			rand.New(rand.NewSource(1)).Read(src)
			b.SetBytes(int64(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				xorWords(src, dst)
			}
		})
	}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return "1MiB"
	case n >= 64<<10:
		return "64KiB"
	default:
		return "1KiB"
	}
}
