package ltcode

import "encoding/binary"

// xorWords sets dst[i] ^= src[i] with a word-at-a-time (uint64),
// 8×-unrolled main loop: 64 bytes per iteration, so the bound checks
// and loop overhead amortize across eight independent XORs the CPU
// can retire in parallel. The LT peeling decoder is little more than
// this loop applied once per edge of the coding graph, which makes it
// the decode-bandwidth ceiling once I/O is pipelined (BENCH_7.json).
// A word loop then a byte loop handle the tail safely for any length
// or alignment. dst and src must have equal length and must not alias
// unless identical.
func xorWords(src, dst []byte) {
	if len(src) != len(dst) {
		panic("ltcode: xorWords length mismatch")
	}
	n := len(dst)
	i := 0
	for ; i+64 <= n; i += 64 {
		// Full-size re-slices keep every load/store's bounds check
		// trivially eliminable.
		d := dst[i : i+64 : i+64]
		s := src[i : i+64 : i+64]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
		binary.LittleEndian.PutUint64(d[16:24], binary.LittleEndian.Uint64(d[16:24])^binary.LittleEndian.Uint64(s[16:24]))
		binary.LittleEndian.PutUint64(d[24:32], binary.LittleEndian.Uint64(d[24:32])^binary.LittleEndian.Uint64(s[24:32]))
		binary.LittleEndian.PutUint64(d[32:40], binary.LittleEndian.Uint64(d[32:40])^binary.LittleEndian.Uint64(s[32:40]))
		binary.LittleEndian.PutUint64(d[40:48], binary.LittleEndian.Uint64(d[40:48])^binary.LittleEndian.Uint64(s[40:48]))
		binary.LittleEndian.PutUint64(d[48:56], binary.LittleEndian.Uint64(d[48:56])^binary.LittleEndian.Uint64(s[48:56]))
		binary.LittleEndian.PutUint64(d[56:64], binary.LittleEndian.Uint64(d[56:64])^binary.LittleEndian.Uint64(s[56:64]))
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:i+8], binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
