package ltcode

import (
	"math"
	"math/rand"
)

// OverheadSample is the result of one simulated reception experiment.
type OverheadSample struct {
	Received int     // coded blocks consumed to complete decoding
	Overhead float64 // Received/K - 1
	XorOps   int64   // block XORs performed (edges used, Fig 5-2)
}

// MeasureOverhead builds a graph with the given parameters and feeds
// coded blocks to a symbolic decoder in a random order until decoding
// completes, returning the reception statistics. n is the number of
// generated coded blocks; it must comfortably exceed (1+ε)K or the
// sample will fail (returns ok=false).
func MeasureOverhead(p Params, n int, rng *rand.Rand, opts GraphOptions) (OverheadSample, bool) {
	g, err := BuildGraph(p, n, rng, opts)
	if err != nil {
		return OverheadSample{}, false
	}
	return MeasureGraphOverhead(g, rng)
}

// MeasureGraphOverhead feeds the graph's coded blocks in a random
// order until complete.
func MeasureGraphOverhead(g *Graph, rng *rand.Rand) (OverheadSample, bool) {
	d := NewSymbolicDecoder(g)
	perm := rng.Perm(g.N)
	for _, idx := range perm {
		d.Add(idx)
		if d.Complete() {
			return OverheadSample{
				Received: d.Received(),
				Overhead: d.ReceptionOverhead(),
				XorOps:   d.XorOps(),
			}, true
		}
	}
	return OverheadSample{Received: d.Received(), Overhead: d.ReceptionOverhead(), XorOps: d.XorOps()}, false
}

// OverheadStats aggregates repeated overhead measurements.
type OverheadStats struct {
	Trials       int
	Failures     int // trials where even N blocks did not decode
	MeanOverhead float64
	StdOverhead  float64
	MeanXorOps   float64
	StdXorOps    float64
}

// MeasureOverheadStats runs `trials` independent reception experiments
// (each with a fresh graph) and aggregates them. This regenerates the
// data behind Figs 5-1 and 5-2.
func MeasureOverheadStats(p Params, n, trials int, rng *rand.Rand, opts GraphOptions) OverheadStats {
	var overheads, xors []float64
	failures := 0
	for t := 0; t < trials; t++ {
		s, ok := MeasureOverhead(p, n, rng, opts)
		if !ok {
			failures++
			continue
		}
		overheads = append(overheads, s.Overhead)
		xors = append(xors, float64(s.XorOps))
	}
	st := OverheadStats{Trials: trials, Failures: failures}
	st.MeanOverhead, st.StdOverhead = meanStd(overheads)
	st.MeanXorOps, st.StdXorOps = meanStd(xors)
	return st
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
