package ltcode

import (
	"fmt"
)

// Decoder is an incremental peeling (belief-propagation) decoder with
// the lazy-XOR strategy of §5.2.3: XOR work is performed only when a
// coded block actually yields an original block, so redundant
// late-arriving blocks cost no memory traffic. Feed coded blocks with
// Add as they arrive; Complete reports when all K originals are
// recovered.
//
// A Decoder built with NewDecoder carries data; one built with
// NewSymbolicDecoder tracks only graph state (used by the simulator to
// determine reception overhead and XOR counts without moving bytes).
//
// Decoder is not safe for concurrent use; wrap with a mutex or confine
// to one goroutine.
type Decoder struct {
	g        *Graph
	symbolic bool

	decoded      []bool
	decodedCount int
	data         [][]byte // decoded originals; nil entries until decoded
	coded        [][]byte // received coded payloads (data mode)
	received     []bool
	nReceived    int

	// pending peeling state
	remaining []int32 // per received coded block: # undecoded neighbors
	waiters   [][]int32
	ripple    []int32 // coded blocks at remaining==1

	xorOps        int64
	usedBlocks    int
	edgesReceived int64

	// requiredPrefix, when positive, marks only the first
	// requiredPrefix originals as the decode target (used by Raptor
	// codes, whose LT layer runs over input+pre-code intermediates but
	// only the inputs must be recovered).
	requiredPrefix  int
	requiredDecoded int
}

// NewDecoder returns a data-carrying decoder for the graph.
func NewDecoder(g *Graph) *Decoder {
	d := newDecoder(g)
	d.data = make([][]byte, g.K)
	d.coded = make([][]byte, g.N)
	return d
}

// NewSymbolicDecoder returns a decoder that tracks decodability only.
func NewSymbolicDecoder(g *Graph) *Decoder {
	d := newDecoder(g)
	d.symbolic = true
	return d
}

func newDecoder(g *Graph) *Decoder {
	d := &Decoder{
		g:         g,
		decoded:   make([]bool, g.K),
		received:  make([]bool, g.N),
		remaining: make([]int32, g.N),
		waiters:   make([][]int32, g.K),
	}
	// Pre-size each original's waiter list to its graph degree, carved
	// from one arena: original j gains at most deg(j) waiters over the
	// decoder's lifetime, so the appends in add() never grow a list and
	// the peeling path allocates nothing beyond the ripple stack.
	deg := make([]int32, g.K)
	total := 0
	for _, nb := range g.Neighbors {
		total += len(nb)
		for _, j := range nb {
			deg[j]++
		}
	}
	arena := make([]int32, total)
	off := 0
	for j := 0; j < g.K; j++ {
		end := off + int(deg[j])
		d.waiters[j] = arena[off:off:end]
		off = end
	}
	return d
}

// AddData feeds coded block idx with its payload, returning the number
// of original blocks newly decoded as a consequence. Duplicate
// deliveries are ignored. Payload length must match previously seen
// blocks.
func (d *Decoder) AddData(idx int, payload []byte) (int, error) {
	if d.symbolic {
		return 0, fmt.Errorf("ltcode: AddData on symbolic decoder")
	}
	if idx < 0 || idx >= d.g.N {
		return 0, fmt.Errorf("ltcode: coded block index %d out of range [0,%d)", idx, d.g.N)
	}
	if d.received[idx] {
		return 0, nil
	}
	d.coded[idx] = payload
	return d.add(idx), nil
}

// Add feeds coded block idx in symbolic mode, returning true if any
// original block was newly decoded.
func (d *Decoder) Add(idx int) bool {
	if idx < 0 || idx >= d.g.N || d.received[idx] {
		return false
	}
	return d.add(idx) > 0
}

func (d *Decoder) add(idx int) int {
	d.received[idx] = true
	d.nReceived++
	d.edgesReceived += int64(len(d.g.Neighbors[idx]))
	if d.decodedCount == d.g.K {
		return 0
	}
	var rem int32
	for _, j := range d.g.Neighbors[idx] {
		if !d.decoded[j] {
			rem++
			d.waiters[j] = append(d.waiters[j], int32(idx))
		}
	}
	d.remaining[idx] = rem
	if rem != 1 {
		return 0 // rem==0: redundant; rem>1: wait
	}
	before := d.decodedCount
	d.ripple = append(d.ripple, int32(idx))
	d.processRipple()
	return d.decodedCount - before
}

func (d *Decoder) processRipple() {
	for len(d.ripple) > 0 && d.decodedCount < d.g.K {
		ci := d.ripple[len(d.ripple)-1]
		d.ripple = d.ripple[:len(d.ripple)-1]
		if d.remaining[ci] != 1 {
			continue // stale ripple entry; neighbor decoded elsewhere
		}
		// Find the single undecoded neighbor.
		var target int32 = -1
		for _, j := range d.g.Neighbors[ci] {
			if !d.decoded[j] {
				target = j
				break
			}
		}
		if target < 0 {
			d.remaining[ci] = 0
			continue
		}
		d.decodeOriginal(target, ci)
	}
}

// decodeOriginal recovers original block `orig` using received coded
// block `via` whose other neighbors are all decoded.
func (d *Decoder) decodeOriginal(orig, via int32) {
	nb := d.g.Neighbors[via]
	if !d.symbolic {
		out := make([]byte, len(d.coded[via]))
		copy(out, d.coded[via])
		for _, j := range nb {
			if j == orig {
				continue
			}
			xorWords(d.data[j], out)
		}
		d.data[orig] = out
	}
	d.xorOps += int64(len(nb) - 1)
	d.usedBlocks++
	d.remaining[via] = 0
	d.decoded[orig] = true
	d.decodedCount++
	if d.requiredPrefix > 0 && int(orig) < d.requiredPrefix {
		d.requiredDecoded++
	}
	if !d.symbolic {
		d.coded[via] = nil // release payload; no longer needed
	}
	// Notify waiters.
	for _, ci := range d.waiters[orig] {
		if d.remaining[ci] <= 0 {
			continue
		}
		d.remaining[ci]--
		if d.remaining[ci] == 1 {
			d.ripple = append(d.ripple, ci)
		}
	}
	d.waiters[orig] = nil
}

// Complete reports whether all K original blocks are decoded.
func (d *Decoder) Complete() bool { return d.decodedCount == d.g.K }

// SetRequiredPrefix restricts the decode target to the first n
// originals: RequiredComplete reports true once they are all
// recovered, even if later originals (e.g. pre-code symbols) are not.
// Must be called before any blocks are added.
func (d *Decoder) SetRequiredPrefix(n int) {
	if d.nReceived > 0 {
		panic("ltcode: SetRequiredPrefix after blocks were added")
	}
	if n < 0 || n > d.g.K {
		panic("ltcode: required prefix out of range")
	}
	d.requiredPrefix = n
	d.requiredDecoded = 0
}

// RequiredComplete reports whether the required prefix (or everything,
// if no prefix was set) is decoded.
func (d *Decoder) RequiredComplete() bool {
	if d.requiredPrefix > 0 {
		return d.requiredDecoded == d.requiredPrefix
	}
	return d.Complete()
}

// DecodedCount returns how many original blocks are recovered so far.
func (d *Decoder) DecodedCount() int { return d.decodedCount }

// Received returns how many distinct coded blocks have been fed in.
func (d *Decoder) Received() int { return d.nReceived }

// ReceptionOverhead returns Received()/K - 1; meaningful once Complete.
func (d *Decoder) ReceptionOverhead() float64 {
	return float64(d.nReceived)/float64(d.g.K) - 1
}

// XorOps returns the number of block-XOR operations performed — the
// "edges used" metric of Fig 5-2. With lazy XOR this counts only the
// edges of coded blocks that actually produced an original block.
func (d *Decoder) XorOps() int64 { return d.xorOps }

// UsedBlocks returns how many received coded blocks contributed a
// decoded original.
func (d *Decoder) UsedBlocks() int { return d.usedBlocks }

// EdgesReceived returns the total edge count of all received coded
// blocks. A greedy decoder (the original LT algorithm, which
// substitutes every decoded original into every pending coded block
// immediately) performs roughly one block-XOR per received edge, so
// this is the greedy-XOR cost that the lazy strategy (XorOps) avoids.
func (d *Decoder) EdgesReceived() int64 { return d.edgesReceived }

// Data returns the decoded original blocks. It errors unless Complete.
func (d *Decoder) Data() ([][]byte, error) {
	if d.symbolic {
		return nil, fmt.Errorf("ltcode: symbolic decoder has no data")
	}
	if !d.Complete() {
		return nil, fmt.Errorf("ltcode: decode incomplete (%d/%d)", d.decodedCount, d.g.K)
	}
	return d.data, nil
}

// IsDecoded reports whether original block j has been recovered.
func (d *Decoder) IsDecoded(j int) bool { return d.decoded[j] }

// DataBlock returns one decoded original block without requiring full
// completion (used by codes that only need a prefix of the originals).
func (d *Decoder) DataBlock(j int) ([]byte, error) {
	if d.symbolic {
		return nil, fmt.Errorf("ltcode: symbolic decoder has no data")
	}
	if j < 0 || j >= d.g.K {
		return nil, fmt.Errorf("ltcode: original index %d out of range", j)
	}
	if !d.decoded[j] {
		return nil, fmt.Errorf("ltcode: original %d not decoded", j)
	}
	return d.data[j], nil
}
