// Package obs is RobuSTore's observability layer: atomic counters and
// gauges, fixed-bucket latency histograms that report the paper's
// robustness statistics (mean and standard deviation, §6.2.3, plus
// p50/p99), and a per-request trace recorder that timestamps the
// stages of the speculative read/write pipeline and of repair rounds.
//
// The package is stdlib-only and designed around one invariant: when
// observability is disabled, instrumented code pays nothing. Every
// method on every type — including *Registry itself — is safe on a
// nil receiver and is a no-op there, so call sites are written
// unconditionally:
//
//	var reg *obs.Registry // nil: disabled
//	reg.Counter("reads_total").Inc()      // no-op, no allocation
//	tr := reg.StartTrace("read", "seg")   // nil trace
//	tr.Stage("first-byte")                // no-op
//	tr.End(nil)                           // no-op
//
// With a live registry the same calls are lock-free atomic updates
// (counters, gauges, histogram buckets) or a short mutex hold (trace
// stages, registry lookups). All types are safe for concurrent use.
//
// Exposition: WriteMetrics (plain text, expvar-style), WriteTraces
// (last-N completed traces), WriteJSON (machine-readable dump for
// -metrics flags), and Handler (an http.Handler serving /metrics and
// /debug/trace for the robustored debug endpoint).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can move in both directions
// (in-flight requests, last-measured throughput). Safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by delta (CAS loop; exact for integer deltas
// within float64 precision).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultTraceCapacity is the ring size StartTrace records into
// unless SetTraceCapacity overrides it.
const DefaultTraceCapacity = 64

// Registry owns a process's metrics and traces. The zero value is not
// usable; call NewRegistry. A nil *Registry is the disabled state:
// every method no-ops and every lookup returns a nil (no-op) metric.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ring     *traceRing
}

// NewRegistry returns an empty registry with the default trace
// capacity.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ring:     newTraceRing(DefaultTraceCapacity),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns
// nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency
// buckets, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the
// given ascending bucket upper bounds on first use (nil bounds =
// DefaultLatencyBuckets). Bounds are fixed at creation; later calls
// with different bounds return the existing histogram.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetTraceCapacity resizes the completed-trace ring (dropping any
// recorded traces). No-op on a nil registry or non-positive n.
func (r *Registry) SetTraceCapacity(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring = newTraceRing(n)
}

// sortedKeys returns map keys in stable order for exposition.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
