package obs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceRecordsStagesAndError(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("read", "seg-1")
	tr.Stage("lookup")
	tr.StageDetail("first-byte", "server-3")
	tr.Stagef("fanout", "servers=%d", 4)
	tr.End(errors.New("boom"))
	// Stages after End are dropped.
	tr.Stage("late")
	tr.End(nil) // second End is a no-op

	recs := r.Traces(0)
	if len(recs) != 1 {
		t.Fatalf("traces = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Op != "read" || rec.Key != "seg-1" {
		t.Fatalf("op/key = %s/%s", rec.Op, rec.Key)
	}
	if rec.Err != "boom" {
		t.Fatalf("err = %q, want boom", rec.Err)
	}
	var names []string
	for _, s := range rec.Stages {
		names = append(names, s.Name)
	}
	want := []string{"lookup", "first-byte", "fanout"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	if rec.Stages[1].Detail != "server-3" {
		t.Fatalf("detail = %q", rec.Stages[1].Detail)
	}
	if rec.Stages[2].Detail != "servers=4" {
		t.Fatalf("formatted detail = %q", rec.Stages[2].Detail)
	}
	for i := 1; i < len(rec.Stages); i++ {
		if rec.Stages[i].Offset < rec.Stages[i-1].Offset {
			t.Fatalf("stage offsets not monotonic: %v", rec.Stages)
		}
	}
	if rec.Duration < rec.Stages[len(rec.Stages)-1].Offset {
		t.Fatalf("duration %v precedes last stage %v", rec.Duration, rec.Stages)
	}
}

// The ring keeps exactly the last N completed traces, newest first.
func TestTraceRingWraparound(t *testing.T) {
	r := NewRegistry()
	r.SetTraceCapacity(4)
	for i := 0; i < 7; i++ {
		tr := r.StartTrace("op", fmt.Sprintf("k%d", i))
		tr.End(nil)
	}
	recs := r.Traces(0)
	if len(recs) != 4 {
		t.Fatalf("traces after wrap = %d, want 4", len(recs))
	}
	for i, wantKey := range []string{"k6", "k5", "k4", "k3"} {
		if recs[i].Key != wantKey {
			t.Errorf("trace %d key = %s, want %s", i, recs[i].Key, wantKey)
		}
	}
	if got := r.Traces(2); len(got) != 2 || got[0].Key != "k6" {
		t.Fatalf("Traces(2) = %v", got)
	}
}

// Stages may be appended from racing goroutines (the read fan-out
// workers); run with -race.
func TestTraceConcurrentStages(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("read", "seg")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.StageDetail("stage", fmt.Sprintf("w%d", w))
			}
		}(w)
	}
	wg.Wait()
	tr.End(nil)
	recs := r.Traces(1)
	if len(recs) != 1 {
		t.Fatalf("traces = %d, want 1", len(recs))
	}
	if len(recs[0].Stages) != 8*50 {
		t.Fatalf("stages = %d, want %d", len(recs[0].Stages), 8*50)
	}
}

func TestWriteTracesFormat(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace("write", "obj")
	tr.Stage("plan")
	tr.End(nil)
	var sb strings.Builder
	r.WriteTraces(&sb, 0)
	out := sb.String()
	if !strings.Contains(out, "write obj") || !strings.Contains(out, "plan") {
		t.Fatalf("trace output missing fields:\n%s", out)
	}
}
