package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// A nil registry must be a complete no-op surface: every lookup,
// metric update, and trace call is safe and free.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v, want 0", got)
	}
	r.Histogram("h").Observe(0.5)
	if got := r.Histogram("h").Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	if s := r.Histogram("h").Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d, want 0", s.Count)
	}
	tr := r.StartTrace("read", "seg")
	tr.Stage("s")
	tr.StageDetail("s", "d")
	tr.Stagef("s", "x=%d", 1)
	tr.End(nil)
	if got := r.Traces(0); got != nil {
		t.Fatalf("nil registry traces = %v, want nil", got)
	}
	var sb strings.Builder
	r.WriteMetrics(&sb)
	r.WriteTraces(&sb, 0)
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	r.SetTraceCapacity(4)
}

// Registry lookups are get-or-create: the same name yields the same
// metric.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same counter name yielded distinct counters")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("same gauge name yielded distinct gauges")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("same histogram name yielded distinct histograms")
	}
}

// Bucket bounds are inclusive upper bounds; values above every bound
// land in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("edges", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	// Cumulative: <=1 holds {0.5, 1}; <=2 adds {1.0000001, 2}; <=4
	// adds {4}; overflow adds {5}.
	wantCum := []int64{2, 4, 5, 6}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d cumulative = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Buckets[3].LE != nil {
		t.Errorf("overflow bucket LE = %v, want nil (+Inf)", *s.Buckets[3].LE)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 4 + 5
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

// Mean/stddev come from the running moments; p50/p99 interpolate
// inside buckets.
func TestHistogramStatistics(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("stats", []float64{10, 20, 30, 40})
	// Four observations with known mean 25 and population stddev
	// sqrt(125) ~= 11.18.
	for _, v := range []float64{10, 20, 30, 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if math.Abs(s.Mean-25) > 1e-9 {
		t.Errorf("mean = %v, want 25", s.Mean)
	}
	if math.Abs(s.StdDev-math.Sqrt(125)) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s.StdDev, math.Sqrt(125))
	}
	// p50: rank 2 falls at the top of the second bucket (cum 2) -> 20.
	if math.Abs(s.P50-20) > 1e-9 {
		t.Errorf("p50 = %v, want 20", s.P50)
	}
	// p99: rank 3.96 interpolates 96% into the (30,40] bucket.
	if s.P99 <= 30 || s.P99 > 40 {
		t.Errorf("p99 = %v, want in (30, 40]", s.P99)
	}
	// Quantiles that land in the overflow bucket floor at the largest
	// finite bound.
	h.Observe(1000)
	if p := h.Snapshot().P99; math.Abs(p-40) > 1e-9 {
		t.Errorf("overflow p99 = %v, want 40", p)
	}
}

// Counters, gauges, and histograms must be exact under concurrent
// updates (run with -race).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_counter")
			g := r.Gauge("conc_gauge")
			h := r.Histogram("conc_hist")
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_counter").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("conc_gauge").Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := r.Histogram("conc_hist").Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// WriteMetrics output is sorted, line-per-metric plain text with
// expanded histogram statistics.
func TestWriteMetricsFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("inflight").Set(3)
	r.HistogramWith("lat_seconds", []float64{1, 2}).Observe(1.5)
	var sb strings.Builder
	r.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"a_total 1\n",
		"b_total 2\n",
		"inflight 3\n",
		"lat_seconds_count 1\n",
		"lat_seconds_mean 1.5\n",
		"lat_seconds_stddev 0\n",
		"lat_seconds_p50 1.5\n",
		`lat_seconds_bucket{le="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}
