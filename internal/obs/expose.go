package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// WriteMetrics writes every metric as expvar-style plain text, one
// `name value` line, sorted by name. Histograms expand into _count,
// _sum, _mean, _stddev, _p50, _p99 lines plus cumulative
// `name_bucket{le="BOUND"}` lines for non-empty buckets. No-op on a
// nil registry.
func (r *Registry) WriteMetrics(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h.Snapshot()
	}
	r.mu.Unlock()

	for _, k := range sortedKeys(counters) {
		fmt.Fprintf(w, "%s %d\n", k, counters[k])
	}
	for _, k := range sortedKeys(gauges) {
		fmt.Fprintf(w, "%s %s\n", k, formatFloat(gauges[k]))
	}
	for _, k := range sortedKeys(hists) {
		s := hists[k]
		fmt.Fprintf(w, "%s_count %d\n", k, s.Count)
		fmt.Fprintf(w, "%s_sum %s\n", k, formatFloat(s.Sum))
		fmt.Fprintf(w, "%s_mean %s\n", k, formatFloat(s.Mean))
		fmt.Fprintf(w, "%s_stddev %s\n", k, formatFloat(s.StdDev))
		fmt.Fprintf(w, "%s_p50 %s\n", k, formatFloat(s.P50))
		fmt.Fprintf(w, "%s_p99 %s\n", k, formatFloat(s.P99))
		var prev int64
		for _, b := range s.Buckets {
			if b.Count == prev {
				continue // empty bucket; cumulative count unchanged
			}
			prev = b.Count
			le := "+Inf"
			if b.LE != nil {
				le = formatFloat(*b.LE)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", k, le, b.Count)
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTraces writes up to n most-recent completed traces (all when
// n <= 0) as indented plain text, newest first. No-op on a nil
// registry.
func (r *Registry) WriteTraces(w io.Writer, n int) {
	if r == nil {
		return
	}
	for _, rec := range r.Traces(n) {
		status := "ok"
		if rec.Err != "" {
			status = "err: " + rec.Err
		}
		fmt.Fprintf(w, "%s %s  start=%s dur=%s  %s\n",
			rec.Op, rec.Key, rec.Start.Format(time.RFC3339Nano),
			rec.Duration.Round(time.Microsecond), status)
		for _, st := range rec.Stages {
			fmt.Fprintf(w, "  +%-12s %s", st.Offset.Round(time.Microsecond), st.Name)
			if st.Detail != "" {
				fmt.Fprintf(w, "  (%s)", st.Detail)
			}
			fmt.Fprintln(w)
		}
	}
}

// Snapshot is the JSON shape of a full registry dump.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Traces     []TraceRecord                `json:"traces,omitempty"`
}

// Snapshot captures every metric and the completed-trace window.
// Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	r.mu.Unlock()
	s.Traces = r.Traces(0)
	return s
}

// WriteJSON writes the full registry snapshot as indented JSON — the
// payload behind the CLIs' -metrics flags. Writes an empty snapshot
// on a nil registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an http.Handler serving the debug endpoint:
//
//	/metrics      — plain-text metrics (WriteMetrics)
//	/metrics.json — full JSON snapshot (WriteJSON)
//	/debug/trace  — last-N completed traces (WriteTraces; ?n= limits)
//
// The handler only reads registry state. Callers decide the bind
// address; bind loopback unless the network is trusted — there is no
// authentication and trace keys may reveal segment names.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteTraces(w, n)
	})
	return mux
}
