package obs_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/transport"
)

// End-to-end: a write and a read through the real client/server stack
// must surface in the debug endpoint — nonzero robust_* and
// transport_* counters, populated latency histograms, and completed
// traces. This is the same wiring robustored -debug-listen uses.
func TestMetricsEndpointReflectsAccess(t *testing.T) {
	reg := obs.NewRegistry()

	srv := transport.NewServer(blockstore.NewMemStore(), transport.ServerOptions{Obs: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	store, err := transport.Dial(ln.Addr().String(), transport.ClientOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	client, err := robust.NewClient(metadata.NewService(), robust.Options{
		BlockBytes: 64 << 10,
		Obs:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.AttachStore("srv", store); err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(data)
	ctx := context.Background()
	if _, err := client.Write(ctx, "obj", data, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := client.Read(ctx, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back wrong data")
	}

	web := httptest.NewServer(obs.Handler(reg))
	defer web.Close()

	metrics := httpGet(t, web.URL+"/metrics")
	for _, re := range []string{
		`(?m)^robust_reads_total 1$`,
		`(?m)^robust_writes_total 1$`,
		`(?m)^robust_read_bytes_total 1048576$`,
		`(?m)^robust_read_latency_seconds_count 1$`,
		`(?m)^robust_write_latency_seconds_count 1$`,
		`(?m)^robust_read_blocks_total [1-9]\d*$`,
		`(?m)^robust_write_blocks_total [1-9]\d*$`,
		`(?m)^transport_client_dials_total [1-9]\d*$`,
		// A v2/v2 pair reads over mux streams (per-stream GETs feeding
		// the decoder as frames arrive), not GETBATCH windows.
		`(?m)^transport_server_get_total [1-9]\d*$`,
		`(?m)^transport_client_mux_dials_total [1-9]\d*$`,
		`(?m)^transport_client_mux_streams_total [1-9]\d*$`,
		`(?m)^transport_server_mux_streams_total [1-9]\d*$`,
		`(?m)^transport_server_put_batch_total [1-9]\d*$`,
		`(?m)^transport_server_batch_blocks_total [1-9]\d*$`,
		`(?m)^transport_client_batches_total [1-9]\d*$`,
		`(?m)^transport_client_batch_roundtrips_saved_total [1-9]\d*$`,
		`(?m)^transport_client_roundtrip_seconds_count [1-9]\d*$`,
	} {
		if !regexp.MustCompile(re).MatchString(metrics) {
			t.Errorf("/metrics missing %s\n%s", re, metrics)
		}
	}

	traces := httpGet(t, web.URL+"/debug/trace")
	if !strings.Contains(traces, "read obj") || !strings.Contains(traces, "write obj") {
		t.Errorf("/debug/trace missing read/write traces:\n%s", traces)
	}
	for _, stage := range []string{"first-byte", "decode-complete", "first-commit", "commit-target"} {
		if !strings.Contains(traces, stage) {
			t.Errorf("/debug/trace missing stage %q:\n%s", stage, traces)
		}
	}

	jsonDump := httpGet(t, web.URL+"/metrics.json")
	if !strings.Contains(jsonDump, `"robust_reads_total": 1`) {
		t.Errorf("/metrics.json missing counters:\n%s", jsonDump)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
