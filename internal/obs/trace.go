package obs

import (
	"fmt"
	"sync"
	"time"
)

// Stage is one timestamped step of a traced request, offset-relative
// to the trace start.
type Stage struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset_ns"`
	Detail string        `json:"detail,omitempty"`
}

// TraceRecord is a completed trace as stored in the ring and exposed
// over /debug/trace and the JSON dump.
type TraceRecord struct {
	Op       string        `json:"op"`  // "read", "write", "repair", ...
	Key      string        `json:"key"` // segment name or similar
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
	Stages   []Stage       `json:"stages"`
}

// Trace records the stages of one in-flight request. Stages may be
// appended from multiple goroutines (the speculative fan-out workers
// race to report first-byte and decode-complete); a mutex orders
// them. All methods are no-ops on a nil receiver, so disabled
// call sites cost one nil check.
type Trace struct {
	mu     sync.Mutex
	rec    TraceRecord
	ring   *traceRing
	ended  bool
	startN time.Time // monotonic anchor for stage offsets
}

// StartTrace begins a trace that End will record into the registry's
// ring. Returns nil (a no-op trace) on a nil registry.
func (r *Registry) StartTrace(op, key string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	now := time.Now()
	return &Trace{
		rec:    TraceRecord{Op: op, Key: key, Start: now},
		ring:   ring,
		startN: now,
	}
}

// Stage appends a named stage at the current offset.
func (t *Trace) Stage(name string) { t.StageDetail(name, "") }

// StageDetail appends a named stage with a preformatted detail
// string. Prefer this over Stagef on paths that run when tracing is
// disabled only if the detail is cheap to build.
func (t *Trace) StageDetail(name, detail string) {
	if t == nil {
		return
	}
	off := time.Since(t.startN)
	t.mu.Lock()
	if !t.ended {
		t.rec.Stages = append(t.rec.Stages, Stage{Name: name, Offset: off, Detail: detail})
	}
	t.mu.Unlock()
}

// Stagef appends a named stage with a formatted detail. The format
// arguments are only evaluated into a string on a live trace, but the
// variadic slice itself is built by the caller — keep Stagef off
// per-block hot loops (per-request use is fine).
func (t *Trace) Stagef(name, format string, args ...any) {
	if t == nil {
		return
	}
	t.StageDetail(name, fmt.Sprintf(format, args...))
}

// End completes the trace and records it. err may be nil. Repeated
// calls after the first are no-ops.
func (t *Trace) End(err error) {
	if t == nil {
		return
	}
	dur := time.Since(t.startN)
	t.mu.Lock()
	if t.ended {
		t.mu.Unlock()
		return
	}
	t.ended = true
	t.rec.Duration = dur
	if err != nil {
		t.rec.Err = err.Error()
	}
	rec := t.rec
	ring := t.ring
	t.mu.Unlock()
	if ring != nil {
		ring.push(rec)
	}
}

// traceRing is a fixed-capacity ring of completed traces: the
// last-N window /debug/trace serves.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	full bool
}

func newTraceRing(capacity int) *traceRing {
	return &traceRing{buf: make([]TraceRecord, capacity)}
}

func (r *traceRing) push(rec TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// last returns up to n most-recent traces, newest first.
func (r *traceRing) last(n int) []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Traces returns up to n most-recent completed traces, newest first
// (all of them when n <= 0). Returns nil on a nil registry.
func (r *Registry) Traces(n int) []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ring := r.ring
	r.mu.Unlock()
	return ring.last(n)
}
