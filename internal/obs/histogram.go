package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets are the upper bounds (in seconds, inclusive)
// used by Registry.Histogram: exponential-ish coverage from 100 µs to
// 30 s, which spans everything from an in-memory block op to a
// stalled wide-area repair round.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket histogram over float64 observations
// (latencies in seconds by convention). Beyond bucket counts it keeps
// the running sum and sum of squares so it can report the mean and
// standard deviation — the two statistics the paper's robustness
// argument is about (§6.2.3) — plus interpolated p50/p99. Observe is
// lock-free (binary search + atomic adds). All methods are no-ops on
// a nil receiver.
type Histogram struct {
	bounds []float64      // ascending upper bounds; immutable after creation
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    Gauge // reuses the CAS float accumulator
	sumsq  Gauge
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. A value lands in the first bucket whose
// upper bound is >= v (bounds are inclusive); values above every
// bound land in the overflow bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.sumsq.Add(v * v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// BucketCount is one histogram bucket in a snapshot. LE is the
// inclusive upper bound; nil means +Inf (the overflow bucket). Count
// is cumulative (observations <= LE), prometheus-style.
type BucketCount struct {
	LE    *float64 `json:"le"`
	Count int64    `json:"count"`
}

// HistogramSnapshot is a consistent-enough point-in-time view of a
// histogram (individual atomics are read without a global lock, so
// concurrent observers may skew Count vs Sum by in-flight updates).
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	StdDev  float64       `json:"stddev"`
	P50     float64       `json:"p50"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot captures the histogram's current state. Returns the zero
// snapshot on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Value(),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Buckets[i].Count = cum
		if i < len(h.bounds) {
			le := h.bounds[i]
			s.Buckets[i].LE = &le
		}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		// Population variance from the running moments; clamp the
		// inevitable tiny negative float drift.
		variance := h.sumsq.Value()/float64(s.Count) - s.Mean*s.Mean
		if variance > 0 {
			s.StdDev = math.Sqrt(variance)
		}
		s.P50 = s.quantile(0.50)
		s.P99 = s.quantile(0.99)
	}
	return s
}

// quantile estimates the q-quantile by linear interpolation inside
// the bucket that holds the target rank. The overflow bucket has no
// upper bound, so targets landing there report the largest finite
// bound (a floor on the true value).
func (s HistogramSnapshot) quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if b.LE == nil {
			// Overflow: report the last finite bound.
			if i > 0 && s.Buckets[i-1].LE != nil {
				return *s.Buckets[i-1].LE
			}
			return 0
		}
		lo, prev := 0.0, int64(0)
		if i > 0 {
			lo = *s.Buckets[i-1].LE
			prev = s.Buckets[i-1].Count
		}
		in := b.Count - prev
		if in <= 0 {
			return *b.LE
		}
		return lo + (*b.LE-lo)*(rank-float64(prev))/float64(in)
	}
	return 0
}
