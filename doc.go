// Package robustore is a from-scratch Go implementation of RobuSTore
// (Xia & Chien): a distributed storage architecture that combines
// rateless LT erasure codes with speculative parallel access to
// deliver high and robust (low-variance) latency from heterogeneous
// distributed disks.
//
// The repository contains two cooperating systems:
//
//   - A working concurrent storage system: block stores and servers
//     (internal/blockstore, internal/transport), a metadata service
//     (internal/metadata), and the RobuSTore client (internal/robust)
//     whose Write encodes ratelessly and spreads blocks speculatively,
//     and whose Read fans requests out to every block holder and
//     cancels the stragglers the moment the incremental LT decoder
//     completes. This package re-exports its primary entry points.
//
//   - A detailed simulation of the paper's evaluation (internal/disk,
//     internal/cluster, internal/schemes, internal/experiments) that
//     regenerates every table and figure of the dissertation's
//     Chapters 5 and 6; see cmd/robustore-sim and bench_test.go.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package robustore
