// Quickstart: store and retrieve an object with the RobuSTore client
// over in-memory storage servers, using the public facade API.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	robustore "repro"
)

func main() {
	// A metadata service plus eight storage servers (in-memory here;
	// see examples/wan-cluster for real TCP servers).
	meta := robustore.NewMetadataService()
	client, err := robustore.NewClient(meta, robustore.Options{
		Redundancy: 3,         // store 4x the data as LT-coded blocks
		BlockBytes: 256 << 10, // 256 KB coded blocks
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		addr := fmt.Sprintf("mem://server-%d", i)
		if err := client.AttachStore(addr, robustore.NewMemStore()); err != nil {
			log.Fatal(err)
		}
	}

	// Write: the client LT-encodes the data and speculatively spreads
	// coded blocks until (1+D)*K blocks have committed.
	data := make([]byte, 8<<20)
	rand.New(rand.NewSource(42)).Read(data)
	ctx := context.Background()
	ws, err := client.Write(ctx, "quickstart-object", data, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d MB as K=%d original / %d coded blocks in %v\n",
		len(data)>>20, ws.K, ws.Committed, ws.Duration.Round(time.Millisecond))

	// Read: block requests fan out to every server in parallel; the
	// access completes the moment the peeling decoder finishes.
	got, rs, err := client.Read(ctx, "quickstart-object")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data mismatch")
	}
	fmt.Printf("read back %d MB from %d blocks (reception overhead %.2f) in %v\n",
		len(got)>>20, rs.Received, rs.Reception, rs.Duration.Round(time.Millisecond))

	// Updates rewrite only the coded blocks whose neighbor sets touch
	// the modified range (§4.3.4 locality).
	affected, err := client.AffectedBlocks("quickstart-object", 0, 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updating the first block would rewrite %d of %d stored blocks\n",
		affected, ws.Committed)
	if err := client.Update(ctx, "quickstart-object", 0, []byte("hello, robust world")); err != nil {
		log.Fatal(err)
	}
	got, _, _ = client.Read(ctx, "quickstart-object")
	fmt.Printf("after update, object begins with: %q\n", got[:19])
}
