// wan-cluster: a self-contained deployment of the full RobuSTore
// framework on localhost — real TCP block servers (with admission
// control), a metadata service, credential-chain authorization, and
// the speculative client — exercising the same code paths as a
// multi-host deployment.
//
//	go run ./examples/wan-cluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"repro/internal/accessctl"
	"repro/internal/admission"
	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/robust"
	"repro/internal/transport"
)

func main() {
	// --- storage sites: six TCP block servers, each with its own
	// admission controller (max 16 concurrent data requests). ---
	meta := metadata.NewService()
	var servers []*transport.Server
	var addrs []string
	for i := 0; i < 6; i++ {
		ctrl, err := admission.NewCapacity(admission.Config{MaxConcurrent: 16})
		if err != nil {
			log.Fatal(err)
		}
		srv := transport.NewServer(blockstore.NewMemStore(), transport.ServerOptions{Admission: ctrl})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		addr := ln.Addr().String()
		addrs = append(addrs, addr)
		meta.RegisterServer(metadata.Server{Addr: addr, ExpectedMBps: 100, Zone: fmt.Sprintf("site-%d", i)})
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	fmt.Printf("started %d block servers: %v\n", len(servers), addrs)

	// --- authorization: the administrator grants Alice read/write on
	// the dataset; Alice delegates read-only access to Bob (the
	// Appendix C two-level credential chain). ---
	admin, _ := accessctl.NewIdentity()
	alice, _ := accessctl.NewIdentity()
	bob, _ := accessctl.NewIdentity()
	const resource = "robustore:segment/wan-demo"
	rootCred, err := admin.Issue(alice.Public, accessctl.Capability{
		Resource: resource, Rights: "RW",
	})
	if err != nil {
		log.Fatal(err)
	}
	aliceChain := accessctl.Chain{rootCred}
	bobChain, err := alice.Delegate(aliceChain, bob.Public, accessctl.Capability{
		Resource: resource, Rights: "R",
		NotAfter: time.Now().Add(time.Hour),
	})
	if err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	check := func(who string, chain accessctl.Chain, holder *accessctl.Identity, right accessctl.Rights) {
		err := accessctl.Verify(chain, admin.Public, holder.Public, resource, right, now)
		verdict := "GRANTED"
		if err != nil {
			verdict = "denied (" + err.Error() + ")"
		}
		fmt.Printf("  %-5s needs %-2s -> %s\n", who, right, verdict)
	}
	fmt.Println("credential checks:")
	check("alice", aliceChain, alice, "RW")
	check("bob", bobChain, bob, "R")
	check("bob", bobChain, bob, "W")

	// --- the client: Alice writes, Bob reads. ---
	client, err := robust.NewClient(meta, robust.Options{
		Redundancy: 3, BlockBytes: 64 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, addr := range addrs {
		store, err := transport.Dial(addr, transport.ClientOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		client.AttachStore(addr, store)
	}

	ctx := context.Background()
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(11)).Read(data)
	ws, err := client.Write(ctx, "wan-demo", data, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice stored 4 MB over TCP: %d blocks in %v\n",
		ws.Committed, ws.Duration.Round(time.Millisecond))

	got, rs, err := client.Read(ctx, "wan-demo")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data mismatch")
	}
	fmt.Printf("bob read it back from %d blocks (overhead %.2f) in %v\n",
		rs.Received, rs.Reception, rs.Duration.Round(time.Millisecond))

	// --- kill two sites mid-flight; the data survives. ---
	servers[0].Close()
	servers[1].Close()
	got, rs, err = client.Read(ctx, "wan-demo")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data mismatch after site failures")
	}
	fmt.Printf("after losing 2 of 6 sites: still %d blocks decoded in %v (%d failed gets tolerated)\n",
		rs.Received, rs.Duration.Round(time.Millisecond), rs.FailedGets)
}
