// erasure-zoo: the four erasure-code families the dissertation surveys
// (§2.2), driven through one interface — encode a document, shuffle
// the coded blocks, lose a third of them, and watch each code decode
// (or explain why it can't). This is the §5.2.1 design decision made
// tangible: why RobuSTore picked LT codes.
//
//	go run ./examples/erasure-zoo
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/erasure"
	"repro/internal/ltcode"
)

func main() {
	const (
		k         = 64
		blockSize = 32 << 10
	)
	rng := rand.New(rand.NewSource(7))
	original := make([][]byte, k)
	for i := range original {
		original[i] = make([]byte, blockSize)
		rng.Read(original[i])
	}

	type entry struct {
		name     string
		code     erasure.Code
		rateless string
	}
	mustLT, err := erasure.NewLT(ltcode.Params{K: k, C: 1, Delta: 0.1}, 4*k, 1)
	if err != nil {
		log.Fatal(err)
	}
	mustRS, err := erasure.NewRS(k, 2*k)
	if err != nil {
		log.Fatal(err)
	}
	mustRaptor, err := erasure.NewRaptor(k, 4*k, 2)
	if err != nil {
		log.Fatal(err)
	}
	mustTornado, err := erasure.NewTornado(k, 3)
	if err != nil {
		log.Fatal(err)
	}
	mustRepl, err := erasure.NewReplication(k, 4)
	if err != nil {
		log.Fatal(err)
	}
	zoo := []entry{
		{"replication (4x)", mustRepl, "no (fixed copies)"},
		{"Reed-Solomon", mustRS, "no (optimal, quadratic cost)"},
		{"Tornado", mustTornado, "no (fixed rate 1-β)"},
		{"LT (improved)", mustLT, "YES — RobuSTore's pick"},
		{"Raptor", mustRaptor, "YES — constant degree"},
	}

	fmt.Printf("%d blocks x %d KB, shuffle the coded blocks, deliver until decoded:\n\n", k, blockSize>>10)
	fmt.Printf("%-18s %6s %6s %10s %12s   %s\n", "code", "N", "needed", "overhead", "decode time", "rateless?")
	for _, e := range zoo {
		coded, err := e.code.Encode(original)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		dec := e.code.NewDecoder()
		order := rng.Perm(e.code.N())
		start := time.Now()
		needed := 0
		for _, idx := range order {
			if err := dec.Add(idx, coded[idx]); err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
			needed++
			if dec.Complete() {
				break
			}
		}
		elapsed := time.Since(start)
		if !dec.Complete() {
			fmt.Printf("%-18s %6d %6s %10s %12s   %s\n", e.name, e.code.N(), "-", "FAILED", "-", e.rateless)
			continue
		}
		got, err := dec.Data()
		if err != nil {
			log.Fatal(err)
		}
		for i := range original {
			if !bytes.Equal(got[i], original[i]) {
				log.Fatalf("%s: block %d corrupt after decode", e.name, i)
			}
		}
		fmt.Printf("%-18s %6d %6d %9.0f%% %12s   %s\n",
			e.name, e.code.N(), needed, (float64(needed)/float64(k)-1)*100,
			elapsed.Round(time.Microsecond), e.rateless)
	}

	fmt.Println("\nwhy it matters for RobuSTore (§5.2.1):")
	fmt.Println("  - replication needs ~K·lnK random blocks — wasteful at scale")
	fmt.Println("  - Reed-Solomon is perfect but quadratic: unusable at K in the thousands")
	fmt.Println("  - Tornado is linear-time but its redundancy is frozen at design time")
	fmt.Println("  - LT/Raptor are rateless: a writer can keep generating blocks until")
	fmt.Println("    enough have committed — which is exactly what speculative,")
	fmt.Println("    adaptive writes to heterogeneous disks require")
}
