// speculative-write: demonstrates the rateless, adaptive write path
// of the real RobuSTore client against an emulated heterogeneous
// server fleet — fast servers absorb more blocks, a straggler absorbs
// few, and the subsequent speculative read shrugs off the slowest
// servers entirely.
//
//	go run ./examples/speculative-write
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/internal/blockstore"
	"repro/internal/metadata"
	"repro/internal/robust"
)

func main() {
	meta := metadata.NewService()
	client, err := robust.NewClient(meta, robust.Options{
		Redundancy: 3,
		BlockBytes: 128 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A fleet with 10x spread in emulated service time, including one
	// pathological straggler — the "federated, evolving" disk pool of
	// the paper's motivation.
	profiles := map[string]blockstore.SlowProfile{
		"fast-ssd-a":  {BaseLatency: 1 * time.Millisecond, JitterLatency: 1 * time.Millisecond, Bandwidth: 200e6},
		"fast-ssd-b":  {BaseLatency: 1 * time.Millisecond, JitterLatency: 1 * time.Millisecond, Bandwidth: 200e6},
		"mid-disk-a":  {BaseLatency: 4 * time.Millisecond, JitterLatency: 4 * time.Millisecond, Bandwidth: 60e6},
		"mid-disk-b":  {BaseLatency: 4 * time.Millisecond, JitterLatency: 6 * time.Millisecond, Bandwidth: 50e6},
		"busy-nas":    {BaseLatency: 10 * time.Millisecond, JitterLatency: 15 * time.Millisecond, Bandwidth: 25e6},
		"wan-archive": {BaseLatency: 40 * time.Millisecond, JitterLatency: 20 * time.Millisecond, Bandwidth: 10e6},
	}
	seed := int64(1)
	for addr, p := range profiles {
		client.AttachStore(addr, blockstore.NewSlowStore(blockstore.NewMemStore(), p, seed))
		seed++
	}

	data := make([]byte, 16<<20)
	rand.New(rand.NewSource(7)).Read(data)
	ctx := context.Background()

	fmt.Println("== rateless speculative write (16 MB, D=3) ==")
	ws, err := client.Write(ctx, "survey-frame-0042", data, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d coded blocks (N=%d) in %v\n",
		ws.Committed, ws.N, ws.Duration.Round(time.Millisecond))
	fmt.Println("blocks landed proportionally to server speed:")
	printSorted(ws.PerServer)

	fmt.Println("\n== speculative read (stragglers canceled mid-flight) ==")
	start := time.Now()
	got, rs, err := client.Read(ctx, "survey-frame-0042")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data mismatch")
	}
	fmt.Printf("decoded from %d blocks (overhead %.2f) in %v\n",
		rs.Received, rs.Reception, time.Since(start).Round(time.Millisecond))
	fmt.Println("blocks actually delivered per server before cancellation:")
	printSorted(rs.PerServer)

	fmt.Println("\n== now the WAN archive goes away entirely ==")
	client.DetachStore("wan-archive")
	start = time.Now()
	got, rs, err = client.Read(ctx, "survey-frame-0042")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data mismatch after server loss")
	}
	fmt.Printf("still decodes, from %d blocks in %v — symmetric redundancy means\n",
		rs.Received, time.Since(start).Round(time.Millisecond))
	fmt.Println("no block is special; any sufficiently large subset reconstructs the data")
}

func printSorted(per map[string]int) {
	type kv struct {
		k string
		v int
	}
	var rows []kv
	for k, v := range per {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].v > rows[j].v })
	for _, r := range rows {
		fmt.Printf("  %-12s %3d blocks\n", r.k, r.v)
	}
}
