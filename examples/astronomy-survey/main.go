// astronomy-survey: the paper's motivating scenario — a scientific
// collaboration (think BIRN/GriPhyN-scale imaging) reading large data
// objects from a shared, heterogeneous wide-area disk pool — run
// through the simulation substrate to compare RobuSTore against the
// conventional parallel schemes for this workload.
//
// Each "image" is a 512 MB object striped over 64 of 128 shared
// disks; other users' traffic appears as random competitive load.
// The survey pipeline needs predictable per-image latency to keep its
// processing stages fed — exactly the robustness RobuSTore targets.
//
//	go run ./examples/astronomy-survey
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/schemes"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		imageBytes = 512 << 20
		trials     = 25 // images fetched per scheme
	)
	ccfg := cluster.DefaultConfig() // 128 disks, 16 filers, 1 ms RTT
	trial := cluster.Trial{
		Layout:     workload.HeterogeneousLayout(),     // disks laid out by many owners
		Background: workload.HeterogeneousBackground(), // other collaborations' traffic
	}

	fmt.Printf("astronomy survey: %d x %dMB image reads on 64 of %d shared disks\n\n",
		trials, imageBytes>>20, ccfg.TotalDisks)
	fmt.Printf("%-10s %10s %12s %12s %10s %9s\n",
		"scheme", "MB/s", "latency(s)", "stddev(s)", "p95(s)", "I/O ovh")

	type row struct {
		scheme schemes.Scheme
		bw     float64
		lat    stats.Summary
		io     float64
	}
	var rows []row
	for _, s := range schemes.AllSchemes {
		cfg := schemes.DefaultConfig(s)
		cfg.DataBytes = imageBytes
		var lats, bws, ios []float64
		for tr := 0; tr < trials; tr++ {
			res, err := schemes.RunReadTrial(ccfg, trial, cfg, int64(9000+tr))
			if err != nil {
				log.Fatal(err)
			}
			lats = append(lats, res.Latency)
			bws = append(bws, res.Bandwidth)
			ios = append(ios, res.IOOverhead)
		}
		r := row{scheme: s, bw: stats.Mean(bws), lat: stats.Summarize(lats), io: stats.Mean(ios)}
		rows = append(rows, r)
		fmt.Printf("%-10s %10.0f %12.2f %12.2f %10.2f %8.0f%%\n",
			s, schemes.MBps(r.bw), r.lat.Mean, r.lat.StdDev, r.lat.P95, r.io*100)
	}

	robu := rows[len(rows)-1]
	raid := rows[0]
	fmt.Printf("\nfor the survey pipeline this means:\n")
	fmt.Printf("  - each image arrives %.1fx faster than with plain striping\n",
		robu.bw/raid.bw)
	fmt.Printf("  - per-image latency is predictable to ±%.0f%% (vs ±%.0f%% for RAID-0),\n",
		100*robu.lat.StdDev/robu.lat.Mean, 100*raid.lat.StdDev/raid.lat.Mean)
	fmt.Printf("    so downstream processing stages can be scheduled tightly\n")
	fmt.Printf("  - the price is %.0f%% extra network/disk I/O and %.0fx storage\n",
		robu.io*100, 1+schemes.DefaultConfig(schemes.RobuSTore).Redundancy)
}
