#!/usr/bin/env bash
# check.sh — the full local hygiene gate, identical to CI.
#
# Usage: ./scripts/check.sh
#
# Runs, in order:
#   1. go build ./...
#   2. gofmt -l (fails on any unformatted file)
#   3. go vet ./...
#   4. robustore-lint -tests -json ./...  (all eight project
#      analyzers — determinism, lock copies, goroutine hygiene, float
#      equality, ctx cancellation, pool leases, error wrapping, metric
#      hygiene — over library AND _test.go files, findings written to
#      a JSON artifact; plus explicit passes over internal/obs and
#      internal/faultinject, the layers every concurrent path calls
#      into)
#   5. go test -shuffle=on ./...
#   6. go test -race on the concurrency-heavy packages (the batch
#      transport, batched blockstore, pipelined client paths, and the
#      shared-graph ltcode layer included)
#   7. chaos suite under -race: real client/server pairs through
#      fault-injection scenarios (stalls, resets, corruption,
#      degraded writes, repair promotion) and the self-healing
#      control plane (kill -> evict -> repair -> rejoin)
#   8. bench smoke: every benchmark once (client overhead + headline
#      reproduction metrics; see scripts/bench_baseline.sh for the
#      committed BENCH_10.json baseline)
#   9. benchdiff: regenerate the baseline into /tmp and diff it
#      against the committed BENCH_10.json with cmd/benchdiff
#      (per-metric tolerances, non-zero exit on regression)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> robustore-lint -tests -json ./... (artifact: lint-findings.json)"
if ! go run ./cmd/robustore-lint -tests -json ./... > lint-findings.json; then
    cat lint-findings.json >&2
    exit 1
fi

echo "==> robustore-lint ./internal/obs/ ./internal/faultinject/ (explicit)"
go run ./cmd/robustore-lint ./internal/obs/ ./internal/faultinject/

echo "==> go test ./..."
go test -shuffle=on ./...

echo "==> go test -race (concurrency-heavy packages)"
go test -race -count=1 -timeout 10m \
    ./internal/robust/ \
    ./internal/transport/ \
    ./internal/faultinject/ \
    ./internal/accessctl/ \
    ./internal/admission/ \
    ./internal/blockstore/ \
    ./internal/cluster/ \
    ./internal/health/ \
    ./internal/lint/ \
    ./internal/ltcode/ \
    ./internal/metadata/ \
    ./internal/metadata/replica/ \
    ./internal/obs/ \
    ./internal/placement/

echo "==> chaos suite under -race"
go test -race -count=1 -timeout 10m -run 'TestChaos' \
    ./internal/robust/ \
    ./internal/metadata/replica/

echo "==> bench smoke (client overhead + headline metrics, 1 iteration)"
go test -bench . -benchtime 1x -run '^$' ./internal/robust/
go test -bench 'BenchmarkFig53DecodeBandwidth|BenchmarkFig66ReadVsDisks|BenchmarkHeadline' \
    -benchtime 1x -run '^$' .

echo "==> benchdiff against committed BENCH_10.json"
./scripts/bench_baseline.sh /tmp/BENCH_10.fresh.json >/dev/null
# Local machines vary from the committed baseline's reference machine,
# so tolerances are scaled up; metric-set drift is still exact.
go run ./cmd/benchdiff -baseline BENCH_10.json -fresh /tmp/BENCH_10.fresh.json -scale 4

echo "==> all checks passed"
