#!/usr/bin/env bash
# check.sh — the full local hygiene gate, identical to CI.
#
# Usage: ./scripts/check.sh
#
# Runs, in order:
#   1. go build ./...
#   2. gofmt -l (fails on any unformatted file)
#   3. go vet ./...
#   4. robustore-lint ./...      (project analyzers: determinism,
#      lock copies, goroutine hygiene, float equality — internal/lint)
#   5. go test ./...
#   6. go test -race on the concurrency-heavy packages
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> robustore-lint ./..."
go run ./cmd/robustore-lint ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrency-heavy packages)"
go test -race -count=1 \
    ./internal/robust/ \
    ./internal/transport/ \
    ./internal/accessctl/ \
    ./internal/admission/ \
    ./internal/blockstore/ \
    ./internal/cluster/

echo "==> all checks passed"
