#!/usr/bin/env bash
# bench_baseline.sh — regenerate the repo's benchmark baseline.
#
# Usage: ./scripts/bench_baseline.sh [output.json]   (default BENCH_10.json)
#
# Runs the headline reproduction benchmarks once (-benchtime 1x) and
# writes their b.ReportMetric values as a JSON baseline: LT decode
# bandwidth, 64-disk RobuSTore read bandwidth, and the speedup over
# RAID-0 — the numbers future PRs diff against to claim a perf
# trajectory. Also runs the chaos stalled-read benchmark (several
# iterations: its metrics are latency tails under injected stalls) to
# record hedged vs unhedged read latency and hedge counts, the
# daemon fault-free benchmark to record read/write latency with and
# without the self-healing control plane enabled, and the client
# read/write benchmarks under -benchmem to record hot-path
# allocations per op (DESIGN.md §10 budgets them), and the streaming
# write benchmark to record pipelined write latency and first-commit
# (write first-byte) latency (DESIGN.md §15). Absolute
# values are machine-dependent; the committed baseline records the
# metric *set* and one reference machine's numbers, and CI's
# bench-smoke job re-runs this script and diffs the result against
# the committed baseline with cmd/benchdiff (per-metric tolerances,
# non-zero exit on regression).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
bench='BenchmarkFig53DecodeBandwidth|BenchmarkFig66ReadVsDisks|BenchmarkHeadline'
chaos_bench='BenchmarkChaosStalledRead'
daemon_bench='BenchmarkDaemonFaultFree'
stream_bench='BenchmarkClientWriteStream16MB'
alloc_bench='BenchmarkClientWriteSteady16MB$|BenchmarkClientWrite16MB$|BenchmarkClientRead16MB$'

raw=$(go test -bench "$bench" -benchtime 1x -run '^$' .)
echo "$raw" >&2
raw_chaos=$(go test -bench "$chaos_bench" -benchtime 10x -run '^$' ./internal/robust/)
echo "$raw_chaos" >&2
raw_daemon=$(go test -bench "$daemon_bench" -benchtime 10x -run '^$' ./internal/robust/)
echo "$raw_daemon" >&2
raw_stream=$(go test -bench "$stream_bench" -benchtime 10x -run '^$' ./internal/robust/)
echo "$raw_stream" >&2
raw_alloc=$(go test -bench "$alloc_bench" -benchmem -benchtime 10x -run '^$' ./internal/robust/)
echo "$raw_alloc" >&2
raw="$raw
$raw_chaos
$raw_daemon
$raw_stream"

# Benchmark output lines look like:
#   BenchmarkFoo-8  1  123 ns/op  45.6 some-metric  7.8 other-metric
# i.e. value/unit pairs from field 3 on. Keep only the custom
# ReportMetric pairs (units without a '/'), emitted as "unit value"
# lines, sorted for a stable diff.
pairs=$(echo "$raw" | awk '/^Benchmark/ {
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        if (unit !~ /\//) print unit, $i
    }
}' | sort)

# The -benchmem run reports allocs/op per benchmark; rekey them as
# <benchmark>_allocs_per_op so they survive the '/'-free filter above
# and diff like any other baseline metric. The steady-state write
# number is the zero-allocation-hot-path headline (DESIGN.md §10).
alloc_pairs=$(echo "$raw_alloc" | awk '/^BenchmarkClient/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^BenchmarkClient/, "", name)
    for (i = 3; i < NF; i += 1) {
        if ($(i + 1) == "allocs/op") print tolower(name) "_allocs_per_op", $i
    }
}' | sort)

pairs=$(printf '%s\n%s\n' "$pairs" "$alloc_pairs" | sed '/^$/d' | sort)

nmetrics=$(printf '%s\n' "$pairs" | sed '/^$/d' | wc -l)
if [ "$nmetrics" -lt 3 ]; then
    echo "bench_baseline: expected >= 3 headline metrics, parsed $nmetrics:" >&2
    printf '%s\n' "$pairs" >&2
    exit 1
fi

{
    printf '{\n'
    printf '  "schema": 1,\n'
    printf '  "bench_filter": "%s",\n' "$bench|$chaos_bench|$daemon_bench|$stream_bench|$alloc_bench"
    printf '  "benchtime": "1x",\n'
    printf '  "metrics": {\n'
    i=0
    while read -r unit value; do
        i=$((i + 1))
        sep=','
        [ "$i" -eq "$nmetrics" ] && sep=''
        printf '    "%s": %s%s\n' "$unit" "$value" "$sep"
    done <<EOF
$pairs
EOF
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
