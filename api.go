package robustore

// This file is the public facade over the library's internal
// packages: the working RobuSTore client/server stack and the
// simulation harness. Downstream code inside this module uses these
// re-exports; the internal packages stay free to evolve.

import (
	"repro/internal/blockstore"
	"repro/internal/experiments"
	"repro/internal/metadata"
	"repro/internal/robust"
	"repro/internal/transport"
)

// Core client types.
type (
	// Client is the RobuSTore client: rateless speculative writes,
	// speculative fan-out reads with decoder-driven cancellation,
	// locality-aware updates.
	Client = robust.Client
	// Options configure a Client (redundancy, block size, LT
	// parameters, per-server parallelism).
	Options = robust.Options
	// WriteStats and ReadStats report per-access behaviour.
	WriteStats = robust.WriteStats
	ReadStats  = robust.ReadStats
	// SegmentInfo is the public view of a stored object.
	SegmentInfo = robust.SegmentInfo
	// Store is the block-level storage-server interface.
	Store = blockstore.Store
	// MetadataService tracks segments, placements, and locks.
	MetadataService = metadata.Service
	// Metadata is the metadata-service interface (in-process or
	// remote).
	Metadata = metadata.API
	// ServerInfo describes a registered storage server.
	ServerInfo = metadata.Server
)

// Re-exported sentinel errors.
var (
	ErrUnrecoverable = robust.ErrUnrecoverable
	ErrNoServers     = robust.ErrNoServers
	ErrNotFound      = blockstore.ErrNotFound
)

// NewMetadataService returns an empty in-process metadata service.
func NewMetadataService() *MetadataService { return metadata.NewService() }

// NewClient creates a RobuSTore client over a metadata service
// (in-process or remote).
func NewClient(meta Metadata, opts Options) (*Client, error) {
	return robust.NewClient(meta, opts)
}

// DialMetadata connects to a networked metadata server (see
// metadata.NewNetworkServer / cmd/robustore-meta).
func DialMetadata(addr string) (*metadata.RemoteClient, error) {
	return metadata.DialRemote(addr)
}

// NewMemStore returns an in-memory block store (tests, examples).
func NewMemStore() Store { return blockstore.NewMemStore() }

// NewFileStore returns a block store persisting under root.
func NewFileStore(root string) (Store, error) { return blockstore.NewFileStore(root) }

// DialStore connects to a remote block server; the returned Store is
// a transport client usable directly with Client.AttachStore.
func DialStore(addr string) (Store, error) {
	return transport.Dial(addr, transport.ClientOptions{})
}

// NewBlockServer wraps a Store for network serving; call Serve or
// ListenAndServe on the result.
func NewBlockServer(store Store) *transport.Server {
	return transport.NewServer(store, transport.ServerOptions{})
}

// RunExperiment regenerates one of the paper's tables/figures by id
// (see experiments.Registry / `robustore-sim -list`).
func RunExperiment(id string, trials int) ([]experiments.Dataset, error) {
	opts := experiments.DefaultOptions()
	if trials > 0 {
		opts.Trials = trials
	}
	return experiments.Run(id, opts)
}
