package robustore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
)

// TestFacadeInMemoryRoundTrip exercises the public API end to end
// over in-memory stores.
func TestFacadeInMemoryRoundTrip(t *testing.T) {
	meta := NewMetadataService()
	client, err := NewClient(meta, Options{BlockBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := client.AttachStore(fmt.Sprintf("s%d", i), NewMemStore()); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := client.Write(ctx, "facade", data, nil); err != nil {
		t.Fatal(err)
	}
	got, stats, err := client.Read(ctx, "facade")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	if stats.Received < stats.K {
		t.Fatal("impossible reception count")
	}
}

// TestFacadeNetworkedRoundTrip runs the facade against real TCP block
// servers.
func TestFacadeNetworkedRoundTrip(t *testing.T) {
	meta := NewMetadataService()
	client, err := NewClient(meta, Options{BlockBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		srv := NewBlockServer(NewMemStore())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		store, err := DialStore(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		client.AttachStore(ln.Addr().String(), store)
	}
	ctx := context.Background()
	data := make([]byte, 300<<10)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := client.Write(ctx, "net-facade", data, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := client.Read(ctx, "net-facade")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch over TCP")
	}
}

func TestFacadeErrors(t *testing.T) {
	meta := NewMetadataService()
	client, err := NewClient(meta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(context.Background(), "x", []byte("d"), nil); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
	store := NewMemStore()
	if _, err := store.Get(context.Background(), "seg", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	ds, err := RunExperiment("table6-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 || len(ds[0].Points) == 0 {
		t.Fatal("empty experiment result")
	}
	if _, err := RunExperiment("bogus", 3); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
}
