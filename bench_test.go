package robustore

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark runs the corresponding
// experiment at a reduced trial count (benchmarks measure harness
// cost; cmd/robustore-sim regenerates the full-paper-scale numbers)
// and reports a few headline metrics through b.ReportMetric so that
// `go test -bench` output doubles as a quick reproduction check.

import (
	"testing"

	"repro/internal/experiments"
)

// benchOpts keeps the per-iteration cost of the heavy sweeps sane.
func benchOpts() experiments.Options { return experiments.Options{Trials: 5, Seed: 1} }

func runExperiment(b *testing.B, id string, metrics func(b *testing.B, ds []experiments.Dataset)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ds, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == b.N-1 && metrics != nil {
			metrics(b, ds)
		}
	}
}

// firstSeriesValue returns series `name` of dataset idx at point x.
func seriesAt(ds []experiments.Dataset, idx int, name string, x float64) float64 {
	for i, p := range ds[idx].Points {
		if p.X == x {
			return ds[idx].Series(name)[i]
		}
	}
	return 0
}

func BenchmarkTable51RSCoding(b *testing.B) {
	runExperiment(b, "table5-1", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "decode MBps", 32), "K32-decode-MBps")
		b.ReportMetric(seriesAt(ds, 0, "decode MBps", 4), "K4-decode-MBps")
	})
}

func BenchmarkFig41Reassembly(b *testing.B) {
	runExperiment(b, "fig4-1", nil)
}

func BenchmarkFig51ReceptionOverhead(b *testing.B) {
	runExperiment(b, "fig5-1", nil)
}

func BenchmarkFig52DecodeEdges(b *testing.B) {
	runExperiment(b, "fig5-2", nil)
}

func BenchmarkFig53DecodeBandwidth(b *testing.B) {
	runExperiment(b, "fig5-3", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "δ=0.1", 1.0), "decode-MBps-C1-d0.1")
	})
}

func BenchmarkTable61DiskCalibration(b *testing.B) {
	runExperiment(b, "table6-1", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "PSeq=0", 8), "slowest-MBps")
		b.ReportMetric(seriesAt(ds, 0, "PSeq=1", 1024), "fastest-MBps")
	})
}

func BenchmarkFig65Background(b *testing.B) {
	runExperiment(b, "fig6-5", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "bg utilization", 6), "util-at-6ms")
	})
}

func BenchmarkFig66ReadVsDisks(b *testing.B) {
	runExperiment(b, "fig6-6", func(b *testing.B, ds []experiments.Dataset) {
		robu := seriesAt(ds, 0, "RobuSTore", 64)
		raid := seriesAt(ds, 0, "RAID-0", 64)
		b.ReportMetric(robu, "RobuSTore-64disk-MBps")
		if raid > 0 {
			b.ReportMetric(robu/raid, "speedup-vs-RAID0")
		}
	})
}

func BenchmarkFig69ReadVsBlockSize(b *testing.B) {
	runExperiment(b, "fig6-9", nil)
}

func BenchmarkFig612ReadVsLatency(b *testing.B) {
	runExperiment(b, "fig6-12", nil)
}

func BenchmarkFig615ReadVsRedundancy(b *testing.B) {
	runExperiment(b, "fig6-15", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "RobuSTore", 3), "RobuSTore-D3-MBps")
	})
}

func BenchmarkFig618WriteVsRedundancy(b *testing.B) {
	runExperiment(b, "fig6-18", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "RobuSTore", 3), "RobuSTore-D3-write-MBps")
	})
}

func BenchmarkFig621Unbalanced(b *testing.B) {
	runExperiment(b, "fig6-21", nil)
}

func BenchmarkFig624Competitive(b *testing.B) {
	runExperiment(b, "fig6-24", nil)
}

func BenchmarkFig626CompetitiveRead(b *testing.B) {
	runExperiment(b, "fig6-26", nil)
}

func BenchmarkFig629CompetitiveWrite(b *testing.B) {
	runExperiment(b, "fig6-29", nil)
}

func BenchmarkFig632CompetitiveUnbalanced(b *testing.B) {
	runExperiment(b, "fig6-32", nil)
}

func BenchmarkFig635Cache(b *testing.B) {
	runExperiment(b, "fig6-35", nil)
}

func BenchmarkAblationLT(b *testing.B) {
	runExperiment(b, "ablation-lt", nil)
}

func BenchmarkAblationLazyXor(b *testing.B) {
	runExperiment(b, "ablation-lazy", nil)
}

func BenchmarkAblationCancel(b *testing.B) {
	runExperiment(b, "ablation-cancel", nil)
}

func BenchmarkExtCodesSurvey(b *testing.B) {
	runExperiment(b, "ext-codes", func(b *testing.B, ds []experiments.Dataset) {
		b.ReportMetric(seriesAt(ds, 0, "decode MBps", 2), "LT-decode-MBps")
		b.ReportMetric(seriesAt(ds, 0, "decode MBps", 3), "Raptor-decode-MBps")
	})
}

func BenchmarkExtAdmission(b *testing.B) {
	runExperiment(b, "ext-admission", nil)
}

func BenchmarkHeadline(b *testing.B) {
	runExperiment(b, "headline", func(b *testing.B, ds []experiments.Dataset) {
		read := seriesAt(ds, 0, "read MBps", 3)
		raid := seriesAt(ds, 0, "read MBps", 0)
		b.ReportMetric(read, "RobuSTore-read-MBps")
		if raid > 0 {
			b.ReportMetric(read/raid, "read-speedup-vs-RAID0")
		}
	})
}
